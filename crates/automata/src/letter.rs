//! Directed letters: the doubled alphabet `{a, a⁻ | a ∈ Σ}`.

use gdx_common::{FxHashSet, Symbol};
use gdx_nre::Nre;
use std::fmt;

/// One letter of the doubled alphabet: a symbol plus a direction flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Letter {
    /// The underlying alphabet symbol.
    pub symbol: Symbol,
    /// `true` for the backward letter `a⁻`.
    pub inverse: bool,
}

impl Letter {
    /// Forward letter `a`.
    pub fn fwd(symbol: Symbol) -> Letter {
        Letter {
            symbol,
            inverse: false,
        }
    }

    /// Backward letter `a⁻`.
    pub fn bwd(symbol: Symbol) -> Letter {
        Letter {
            symbol,
            inverse: true,
        }
    }
}

impl fmt::Display for Letter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.inverse {
            write!(f, "{}-", self.symbol)
        } else {
            write!(f, "{}", self.symbol)
        }
    }
}

/// The directed letters actually used by an NRE.
pub fn letters_of(r: &Nre) -> FxHashSet<Letter> {
    let mut out = FxHashSet::default();
    collect(r, &mut out);
    out
}

fn collect(r: &Nre, out: &mut FxHashSet<Letter>) {
    match r {
        Nre::Epsilon => {}
        Nre::Label(a) => {
            out.insert(Letter::fwd(*a));
        }
        Nre::Inverse(a) => {
            out.insert(Letter::bwd(*a));
        }
        Nre::Union(x, y) | Nre::Concat(x, y) => {
            collect(x, out);
            collect(y, out);
        }
        Nre::Star(x) | Nre::Test(x) => collect(x, out),
    }
}

/// The sorted union of the letters of several NREs — the alphabet both
/// automata of an inclusion check must share.
pub fn joint_alphabet(exprs: &[&Nre]) -> Vec<Letter> {
    let mut set: FxHashSet<Letter> = FxHashSet::default();
    for e in exprs {
        set.extend(letters_of(e));
    }
    let mut v: Vec<Letter> = set.into_iter().collect();
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdx_nre::parse::parse_nre;

    #[test]
    fn letters_distinguish_direction() {
        let r = parse_nre("a.a-").unwrap();
        let ls = letters_of(&r);
        assert_eq!(ls.len(), 2);
        assert!(ls.contains(&Letter::fwd(Symbol::new("a"))));
        assert!(ls.contains(&Letter::bwd(Symbol::new("a"))));
    }

    #[test]
    fn joint_alphabet_is_sorted_union() {
        let a = parse_nre("a.b").unwrap();
        let b = parse_nre("b+c-").unwrap();
        let j = joint_alphabet(&[&a, &b]);
        assert_eq!(j.len(), 3, "a, b, c- with b shared");
        let mut sorted = j.clone();
        sorted.sort();
        assert_eq!(j, sorted);
    }

    #[test]
    fn display() {
        assert_eq!(Letter::fwd(Symbol::new("f")).to_string(), "f");
        assert_eq!(Letter::bwd(Symbol::new("f")).to_string(), "f-");
    }
}
