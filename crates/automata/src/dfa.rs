//! Deterministic automata: subset construction, boolean combinations,
//! emptiness, shortest words, Moore minimization.
//!
//! All DFAs here are *complete* over their fixed alphabet (every state has
//! a transition for every letter), which makes complementation a flip of
//! the accept set.

use crate::eval_nfa::EvalNfa;
use crate::letter::Letter;
use crate::nfa::{Nfa, StateId};
use gdx_common::{FxHashMap, FxHashSet, Result};
use gdx_nre::Nre;
use std::collections::VecDeque;

/// A complete DFA over an explicit alphabet.
#[derive(Debug, Clone)]
pub struct Dfa {
    /// The alphabet; transition tables are indexed by position in this
    /// vector.
    pub alphabet: Vec<Letter>,
    /// `trans[state][letter_idx]` — the successor state.
    pub trans: Vec<Vec<u32>>,
    /// Start state.
    pub start: u32,
    /// Acceptance flags.
    pub accept: Vec<bool>,
}

impl Dfa {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.trans.len()
    }

    /// Compiles a test-free NRE into a complete DFA over `alphabet`
    /// (which must contain every letter of the NRE — use
    /// [`crate::letter::joint_alphabet`]).
    pub fn from_nre(r: &Nre, alphabet: &[Letter]) -> Result<Dfa> {
        let nfa = Nfa::from_nre(r)?;
        Ok(Dfa::determinize(&nfa, alphabet))
    }

    /// Subset construction. The result is complete: missing transitions go
    /// to an (implicit, possibly unreachable) empty subset acting as sink.
    pub fn determinize(nfa: &Nfa, alphabet: &[Letter]) -> Dfa {
        Dfa::determinize_eval(&EvalNfa::from_nfa(nfa), alphabet)
    }

    /// Subset construction over the ε-free [`EvalNfa`] form: targets are
    /// pre-closed, so each step is a plain sorted union.
    pub fn determinize_eval(nfa: &EvalNfa, alphabet: &[Letter]) -> Dfa {
        let mut subsets: FxHashMap<Vec<StateId>, u32> = FxHashMap::default();
        let mut trans: Vec<Vec<u32>> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();
        let mut queue: VecDeque<Vec<StateId>> = VecDeque::new();

        let is_accepting = |key: &[StateId]| key.iter().any(|&s| nfa.accept[s as usize]);

        let start_key = nfa.start.clone();
        subsets.insert(start_key.clone(), 0);
        trans.push(vec![u32::MAX; alphabet.len()]);
        accept.push(is_accepting(&start_key));
        queue.push_back(start_key);

        while let Some(key) = queue.pop_front() {
            let sid = subsets[&key];
            for (li, &letter) in alphabet.iter().enumerate() {
                let mut next_key: Vec<StateId> = Vec::new();
                for &s in &key {
                    next_key.extend(nfa.step(s, letter).iter().copied());
                }
                next_key.sort_unstable();
                next_key.dedup();
                let nid = match subsets.get(&next_key) {
                    Some(&id) => id,
                    None => {
                        let id = trans.len() as u32;
                        subsets.insert(next_key.clone(), id);
                        trans.push(vec![u32::MAX; alphabet.len()]);
                        accept.push(is_accepting(&next_key));
                        queue.push_back(next_key);
                        id
                    }
                };
                trans[sid as usize][li] = nid;
            }
        }
        debug_assert!(trans.iter().all(|row| row.iter().all(|&t| t != u32::MAX)));
        Dfa {
            alphabet: alphabet.to_vec(),
            trans,
            start: 0,
            accept,
        }
    }

    /// Complement (alphabet-relative).
    pub fn complement(&self) -> Dfa {
        let mut d = self.clone();
        for a in &mut d.accept {
            *a = !*a;
        }
        d
    }

    /// Product intersection. Both automata must share the same alphabet
    /// (asserted in debug builds).
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        debug_assert_eq!(self.alphabet, other.alphabet);
        let k = self.alphabet.len();
        let mut map: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        let mut trans: Vec<Vec<u32>> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();
        let mut queue: VecDeque<(u32, u32)> = VecDeque::new();
        map.insert((self.start, other.start), 0);
        trans.push(vec![u32::MAX; k]);
        accept.push(self.accept[self.start as usize] && other.accept[other.start as usize]);
        queue.push_back((self.start, other.start));
        while let Some((p, q)) = queue.pop_front() {
            let sid = map[&(p, q)];
            for li in 0..k {
                let np = self.trans[p as usize][li];
                let nq = other.trans[q as usize][li];
                let nid = match map.get(&(np, nq)) {
                    Some(&id) => id,
                    None => {
                        let id = trans.len() as u32;
                        map.insert((np, nq), id);
                        trans.push(vec![u32::MAX; k]);
                        accept.push(self.accept[np as usize] && other.accept[nq as usize]);
                        queue.push_back((np, nq));
                        id
                    }
                };
                trans[sid as usize][li] = nid;
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            trans,
            start: 0,
            accept,
        }
    }

    /// True when the automaton accepts no word.
    pub fn is_empty_language(&self) -> bool {
        self.shortest_accepted().is_none()
    }

    /// A shortest accepted word, if any (BFS from the start state).
    pub fn shortest_accepted(&self) -> Option<Vec<Letter>> {
        let n = self.state_count();
        let mut prev: Vec<Option<(u32, usize)>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = VecDeque::new();
        visited[self.start as usize] = true;
        queue.push_back(self.start);
        let mut hit: Option<u32> = if self.accept[self.start as usize] {
            Some(self.start)
        } else {
            None
        };
        'bfs: while let Some(s) = queue.pop_front() {
            if hit.is_some() {
                break;
            }
            for (li, &t) in self.trans[s as usize].iter().enumerate() {
                if !visited[t as usize] {
                    visited[t as usize] = true;
                    prev[t as usize] = Some((s, li));
                    if self.accept[t as usize] {
                        hit = Some(t);
                        break 'bfs;
                    }
                    queue.push_back(t);
                }
            }
        }
        let mut cur = hit?;
        let mut word = Vec::new();
        while let Some((p, li)) = prev[cur as usize] {
            word.push(self.alphabet[li]);
            cur = p;
        }
        word.reverse();
        Some(word)
    }

    /// Word acceptance.
    pub fn accepts(&self, word: &[Letter]) -> bool {
        let mut s = self.start;
        for l in word {
            let Some(li) = self.alphabet.iter().position(|a| a == l) else {
                return false;
            };
            s = self.trans[s as usize][li];
        }
        self.accept[s as usize]
    }

    /// Moore minimization: iterated partition refinement. Returns an
    /// equivalent DFA with the minimum number of reachable states.
    pub fn minimize(&self) -> Dfa {
        let n = self.state_count();
        let k = self.alphabet.len();
        // Initial partition: accept vs non-accept.
        let mut class: Vec<u32> = self.accept.iter().map(|&a| if a { 1 } else { 0 }).collect();
        loop {
            // Signature: (class, classes of successors).
            let mut sig_map: FxHashMap<(u32, Vec<u32>), u32> = FxHashMap::default();
            let mut new_class = vec![0u32; n];
            for s in 0..n {
                let sig: (u32, Vec<u32>) = (
                    class[s],
                    (0..k).map(|li| class[self.trans[s][li] as usize]).collect(),
                );
                let next_id = sig_map.len() as u32;
                let id = *sig_map.entry(sig).or_insert(next_id);
                new_class[s] = id;
            }
            let stable = sig_map.len() as u32
                == class.iter().copied().collect::<FxHashSet<u32>>().len() as u32
                && new_class == class;
            let count_changed = {
                let old: FxHashSet<u32> = class.iter().copied().collect();
                sig_map.len() != old.len()
            };
            class = new_class;
            if stable || !count_changed {
                break;
            }
        }
        // Rebuild over classes, keeping only classes reachable from start.
        let class_count = class.iter().copied().collect::<FxHashSet<u32>>().len();
        let mut repr: Vec<Option<usize>> = vec![None; class_count];
        for (s, &c) in class.iter().enumerate() {
            if repr[c as usize].is_none() {
                repr[c as usize] = Some(s);
            }
        }
        let mut trans = vec![vec![u32::MAX; k]; class_count];
        let mut accept = vec![false; class_count];
        for c in 0..class_count {
            // Class ids are contiguous, so the fill loop above visited
            // every class; a missing representative is a partition bug.
            #[allow(clippy::expect_used)]
            let s = repr[c].expect("every class has a representative");
            accept[c] = self.accept[s];
            for li in 0..k {
                trans[c][li] = class[self.trans[s][li] as usize];
            }
        }
        let d = Dfa {
            alphabet: self.alphabet.clone(),
            trans,
            start: class[self.start as usize],
            accept,
        };
        d.trim_unreachable()
    }

    /// Drops states unreachable from the start (renumbering).
    fn trim_unreachable(&self) -> Dfa {
        let k = self.alphabet.len();
        let mut order: Vec<u32> = Vec::new();
        let mut remap: FxHashMap<u32, u32> = FxHashMap::default();
        let mut queue = VecDeque::new();
        remap.insert(self.start, 0);
        order.push(self.start);
        queue.push_back(self.start);
        while let Some(s) = queue.pop_front() {
            for li in 0..k {
                let t = self.trans[s as usize][li];
                if let std::collections::hash_map::Entry::Vacant(e) = remap.entry(t) {
                    e.insert(order.len() as u32);
                    order.push(t);
                    queue.push_back(t);
                }
            }
        }
        let mut trans = vec![vec![u32::MAX; k]; order.len()];
        let mut accept = vec![false; order.len()];
        for (new, &old) in order.iter().enumerate() {
            accept[new] = self.accept[old as usize];
            for li in 0..k {
                trans[new][li] = remap[&self.trans[old as usize][li]];
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            trans,
            start: 0,
            accept,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::letter::joint_alphabet;
    use gdx_common::Symbol;
    use gdx_nre::parse::parse_nre;

    fn dfa(expr: &str) -> Dfa {
        let r = parse_nre(expr).unwrap();
        let ab = joint_alphabet(&[&r]);
        Dfa::from_nre(&r, &ab).unwrap()
    }

    fn word(text: &str) -> Vec<Letter> {
        text.split_whitespace()
            .map(|t| {
                if let Some(s) = t.strip_suffix('-') {
                    Letter::bwd(Symbol::new(s))
                } else {
                    Letter::fwd(Symbol::new(t))
                }
            })
            .collect()
    }

    #[test]
    fn determinization_preserves_language() {
        let d = dfa("a.(b*+c*).a");
        assert!(d.accepts(&word("a a")));
        assert!(d.accepts(&word("a b b a")));
        assert!(d.accepts(&word("a c a")));
        assert!(!d.accepts(&word("a b c a")));
        assert!(!d.accepts(&word("a")));
    }

    #[test]
    fn complement_flips() {
        let d = dfa("a.a");
        let c = d.complement();
        assert!(d.accepts(&word("a a")) && !c.accepts(&word("a a")));
        assert!(!d.accepts(&word("a")) && c.accepts(&word("a")));
    }

    #[test]
    fn emptiness_and_shortest() {
        let d = dfa("a.b");
        assert!(!d.is_empty_language());
        assert_eq!(d.shortest_accepted().unwrap(), word("a b"));
        // a ∩ b = ∅
        let r1 = parse_nre("a").unwrap();
        let r2 = parse_nre("b").unwrap();
        let ab = joint_alphabet(&[&r1, &r2]);
        let i = Dfa::from_nre(&r1, &ab)
            .unwrap()
            .intersect(&Dfa::from_nre(&r2, &ab).unwrap());
        assert!(i.is_empty_language());
        assert_eq!(i.shortest_accepted(), None);
    }

    #[test]
    fn shortest_of_nullable_is_epsilon() {
        let d = dfa("a*");
        assert_eq!(d.shortest_accepted().unwrap(), vec![]);
    }

    #[test]
    fn minimize_shrinks_and_preserves() {
        // (a+b)* over {a,b} minimizes to a single state.
        let d = dfa("(a+b)*");
        let m = d.minimize();
        assert_eq!(m.state_count(), 1);
        assert!(m.accepts(&word("a b a")));
        assert!(m.accepts(&[]));
        // a.a* needs two states.
        let m2 = dfa("a.a*").minimize();
        assert_eq!(m2.state_count(), 2);
        assert!(!m2.accepts(&[]));
        assert!(m2.accepts(&word("a a a")));
    }

    #[test]
    fn minimize_equivalent_expressions_same_size() {
        let m1 = dfa("a*").minimize();
        let r = parse_nre("eps+a.a*").unwrap();
        let ab = joint_alphabet(&[&r]);
        let m2 = Dfa::from_nre(&r, &ab).unwrap().minimize();
        assert_eq!(m1.state_count(), m2.state_count());
    }

    #[test]
    fn intersect_is_conjunction() {
        let r1 = parse_nre("a*.b").unwrap();
        let r2 = parse_nre("a.b*").unwrap();
        let ab = joint_alphabet(&[&r1, &r2]);
        let i = Dfa::from_nre(&r1, &ab)
            .unwrap()
            .intersect(&Dfa::from_nre(&r2, &ab).unwrap());
        // Intersection is {a b}: must end in b (r1), start with a then b* (r2).
        assert!(i.accepts(&word("a b")));
        assert!(!i.accepts(&word("b")));
        assert!(!i.accepts(&word("a a b")));
        assert_eq!(i.shortest_accepted().unwrap().len(), 2);
    }
}
