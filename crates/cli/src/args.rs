//! Minimal flag parser: `--name value` pairs plus boolean `--name` flags.

use gdx_common::{GdxError, Result};

/// Parsed flags of one subcommand invocation.
#[derive(Debug, Default)]
pub struct Args {
    pairs: Vec<(String, Option<String>)>,
}

impl Args {
    /// Parses `argv`, treating entries in `bool_flags` as valueless.
    pub fn parse(argv: &[String], bool_flags: &[&str]) -> Result<Args> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(GdxError::schema(format!(
                    "unexpected positional argument `{arg}`"
                )));
            };
            if bool_flags.contains(&name) {
                pairs.push((name.to_owned(), None));
                i += 1;
            } else {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| GdxError::schema(format!("flag --{name} needs a value")))?;
                pairs.push((name.to_owned(), Some(value.clone())));
                i += 2;
            }
        }
        Ok(Args { pairs })
    }

    /// The value of `--name`, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// The value of a required flag.
    pub fn require(&self, name: &str) -> Result<&str> {
        self.get(name)
            .ok_or_else(|| GdxError::schema(format!("missing required flag --{name}")))
    }

    /// True when the boolean flag was given.
    pub fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(n, _)| n == name)
    }

    /// Parses a numeric flag with a default.
    pub fn get_usize(&self, name: &str, default: usize) -> Result<usize> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                GdxError::schema(format!("flag --{name} expects a number, got `{v}`"))
            }),
        }
    }
}

/// Reads a file, mapping IO errors into the workspace error type.
pub fn read_file(path: &str) -> Result<String> {
    std::fs::read_to_string(path).map_err(|e| GdxError::schema(format!("cannot read {path}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_bools() {
        let a = Args::parse(&v(&["--setting", "s.gdx", "--dot"]), &["dot"]).unwrap();
        assert_eq!(a.get("setting"), Some("s.gdx"));
        assert!(a.has("dot"));
        assert!(!a.has("reify"));
        assert!(a.require("setting").is_ok());
        assert!(a.require("instance").is_err());
    }

    #[test]
    fn rejects_positional_and_dangling() {
        assert!(Args::parse(&v(&["positional"]), &[]).is_err());
        assert!(Args::parse(&v(&["--setting"]), &[]).is_err());
    }

    #[test]
    fn numeric_flags() {
        let a = Args::parse(&v(&["--max-graphs", "512"]), &[]).unwrap();
        assert_eq!(a.get_usize("max-graphs", 256).unwrap(), 512);
        assert_eq!(a.get_usize("other", 7).unwrap(), 7);
        let b = Args::parse(&v(&["--max-graphs", "abc"]), &[]).unwrap();
        assert!(b.get_usize("max-graphs", 1).is_err());
    }
}
