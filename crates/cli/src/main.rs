//! `gdx` — command-line front end for the graph data exchange library.
//!
//! ```text
//! gdx chase   --setting S.gdx --instance I.facts [--skip-egds] [--dot]
//! gdx solve   --setting S.gdx --instance I.facts [--max-graphs N]
//! gdx check   --setting S.gdx --instance I.facts --graph G.graph
//! gdx certain --setting S.gdx --instance I.facts --nre "a.a" --pair c1,c2
//! gdx reduce  --dimacs F.cnf [--sameas]
//! gdx direct  --schema "R/2; S/2" --instance I.facts [--reify]
//! ```
//!
//! Argument parsing is hand-rolled (the workspace carries no CLI
//! dependency); every subcommand prints to stdout and exits non-zero on
//! error.

#![forbid(unsafe_code)]

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
