//! Subcommand implementations.

use crate::args::{read_file, Args};
use gdx_chase::{chase_st, EgdChaseOutcome, StChaseVariant};
use gdx_common::{GdxError, Result};
use gdx_exchange::exists::{chased_pattern, SolverConfig};
use gdx_exchange::reduction::{Reduction, ReductionFlavor};
use gdx_exchange::{certain_pair, is_solution, solution_exists, CertainAnswer, Existence};
use gdx_graph::Graph;
use gdx_mapping::Setting;
use gdx_pattern::InstantiationConfig;
use gdx_query::Cnre;
use gdx_relational::{Instance, Schema};
use gdx_sat::Cnf;

const USAGE: &str = "\
gdx — relational-to-graph data exchange with target constraints

USAGE:
  gdx chase   --setting S.gdx --instance I.facts [--skip-egds] [--dot]
  gdx solve   --setting S.gdx --instance I.facts [--max-graphs N]
  gdx check   --setting S.gdx --instance I.facts --graph G.graph
  gdx certain --setting S.gdx --instance I.facts --nre EXPR --pair C1,C2
              [--max-graphs N]
  gdx cert-query --setting S.gdx --instance I.facts --cnre QUERY
  gdx reduce  --dimacs F.cnf [--sameas]
  gdx direct  --schema DECLS --instance I.facts [--reify]
  gdx help

FILE FORMATS:
  settings: the DSL (source{..} target{..} sttgd.. egd.. tgd.. sameas..)
  instances: fact lists        Flight(01, c1, c2); Hotel(01, hx);
  graphs: edge lists           (c1, f, _N); (_N, h, hx);
  formulas: DIMACS cnf
";

/// Dispatches on the first argument.
pub fn dispatch(argv: &[String]) -> Result<()> {
    let Some(cmd) = argv.first() else {
        println!("{USAGE}");
        return Ok(());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "chase" => cmd_chase(rest),
        "solve" => cmd_solve(rest),
        "check" => cmd_check(rest),
        "certain" => cmd_certain(rest),
        "cert-query" => cmd_cert_query(rest),
        "reduce" => cmd_reduce(rest),
        "direct" => cmd_direct(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(GdxError::schema(format!(
            "unknown subcommand `{other}` (try `gdx help`)"
        ))),
    }
}

fn load_setting_instance(a: &Args) -> Result<(Setting, Instance)> {
    let setting = gdx_mapping::dsl::parse_setting(&read_file(a.require("setting")?)?)?;
    let instance = Instance::parse(setting.source.clone(), &read_file(a.require("instance")?)?)?;
    Ok((setting, instance))
}

fn config(a: &Args) -> Result<SolverConfig> {
    Ok(SolverConfig {
        instantiation: InstantiationConfig {
            max_graphs: a.get_usize("max-graphs", 256)?,
            ..InstantiationConfig::default()
        },
        ..SolverConfig::default()
    })
}

fn cmd_chase(argv: &[String]) -> Result<()> {
    let a = Args::parse(argv, &["skip-egds", "dot"])?;
    let (setting, instance) = load_setting_instance(&a)?;
    let pattern = if a.has("skip-egds") {
        chase_st(&instance, &setting, StChaseVariant::Oblivious)?.pattern
    } else {
        match chased_pattern(&instance, &setting, &config(&a)?)? {
            EgdChaseOutcome::Success { pattern, merges } => {
                eprintln!("egd phase: {merges} merges");
                pattern
            }
            EgdChaseOutcome::Failed { constants, .. } => {
                println!(
                    "CHASE FAILED: constants {} and {} forced equal — no solution",
                    constants.0, constants.1
                );
                return Ok(());
            }
        }
    };
    if a.has("dot") {
        println!("{}", pattern.to_dot());
    } else {
        print!("{pattern}");
    }
    Ok(())
}

fn cmd_solve(argv: &[String]) -> Result<()> {
    let a = Args::parse(argv, &[])?;
    let (setting, instance) = load_setting_instance(&a)?;
    match solution_exists(&instance, &setting, &config(&a)?)? {
        Existence::Exists(g) => {
            println!("EXISTS");
            print!("{g}");
        }
        Existence::NoSolution => println!("NO SOLUTION"),
        Existence::Unknown(why) => println!("UNKNOWN ({why})"),
    }
    Ok(())
}

fn cmd_check(argv: &[String]) -> Result<()> {
    let a = Args::parse(argv, &[])?;
    let (setting, instance) = load_setting_instance(&a)?;
    let graph = Graph::parse(&read_file(a.require("graph")?)?)?;
    if is_solution(&instance, &setting, &graph)? {
        println!("SOLUTION");
    } else {
        println!("NOT A SOLUTION");
    }
    Ok(())
}

fn cmd_certain(argv: &[String]) -> Result<()> {
    let a = Args::parse(argv, &[])?;
    let (setting, instance) = load_setting_instance(&a)?;
    let nre = gdx_nre::parse::parse_nre(a.require("nre")?)?;
    let pair = a.require("pair")?;
    let (c1, c2) = pair
        .split_once(',')
        .ok_or_else(|| GdxError::schema(format!("--pair expects `c1,c2`, got `{pair}`")))?;
    match certain_pair(
        &instance,
        &setting,
        &nre,
        c1.trim(),
        c2.trim(),
        &config(&a)?,
    )? {
        CertainAnswer::Certain => println!("CERTAIN"),
        CertainAnswer::NotCertain(g) => {
            println!("NOT CERTAIN — counterexample solution:");
            print!("{g}");
        }
        CertainAnswer::Unknown(why) => println!("UNKNOWN ({why})"),
    }
    Ok(())
}

fn cmd_cert_query(argv: &[String]) -> Result<()> {
    let a = Args::parse(argv, &[])?;
    let (setting, instance) = load_setting_instance(&a)?;
    let query = Cnre::parse(a.require("cnre")?)?;
    let (rows, exact) =
        gdx_exchange::certain::certain_answers(&instance, &setting, &query, &config(&a)?)?;
    println!(
        "{} certain answer(s){}:",
        rows.len(),
        if exact { "" } else { " (within bounds)" }
    );
    let vars = query.variables();
    for row in rows {
        let cells: Vec<String> = vars
            .iter()
            .zip(&row)
            .map(|(v, n)| format!("{v}={n}"))
            .collect();
        println!("  {}", cells.join(", "));
    }
    Ok(())
}

fn cmd_reduce(argv: &[String]) -> Result<()> {
    let a = Args::parse(argv, &["sameas"])?;
    let cnf = Cnf::from_dimacs(&read_file(a.require("dimacs")?)?)?;
    let flavor = if a.has("sameas") {
        ReductionFlavor::SameAs
    } else {
        ReductionFlavor::Egd
    };
    let red = Reduction::from_cnf(&cnf, flavor)?;
    println!(
        "# Theorem 4.1 reduction of {} ({} vars, {} clauses)",
        a.require("dimacs")?,
        cnf.num_vars,
        cnf.clauses.len()
    );
    print!("{}", red.setting);
    println!("\n# fixed instance I_ρ:");
    print!("{}", red.instance);
    Ok(())
}

fn cmd_direct(argv: &[String]) -> Result<()> {
    let a = Args::parse(argv, &["reify"])?;
    let schema = Schema::parse(a.require("schema")?)?;
    let instance = Instance::parse(schema, &read_file(a.require("instance")?)?)?;
    let graph = if a.has("reify") {
        gdx_exchange::direct::direct_map_reified(&instance)
    } else {
        gdx_exchange::direct::direct_map_binary(&instance)?
    };
    print!("{graph}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_tmp(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(format!("gdx-cli-test-{name}"));
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn v(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    /// Each test gets its own files: tests run in parallel and must not
    /// race on a shared temp path.
    fn example_files(tag: &str) -> (String, String) {
        let setting = write_tmp(
            &format!("{tag}-setting.gdx"),
            "source { Flight/3; Hotel/2 }
             target { f; h }
             sttgd Flight(x1, x2, x3), Hotel(x1, x4)
                   -> exists y : (x2, f.f*, y), (y, h, x4), (y, f.f*, x3);
             egd (x1, h, x3), (x2, h, x3) -> x1 = x2;",
        );
        let instance = write_tmp(
            &format!("{tag}-instance.facts"),
            "Flight(01, c1, c2); Flight(02, c3, c2);
             Hotel(01, hx); Hotel(01, hy); Hotel(02, hx);",
        );
        (setting, instance)
    }

    #[test]
    fn chase_and_solve_run() {
        let (s, i) = example_files("chase");
        dispatch(&v(&["chase", "--setting", &s, "--instance", &i])).unwrap();
        dispatch(&v(&[
            "chase",
            "--setting",
            &s,
            "--instance",
            &i,
            "--skip-egds",
        ]))
        .unwrap();
        dispatch(&v(&["solve", "--setting", &s, "--instance", &i])).unwrap();
    }

    #[test]
    fn check_accepts_g1() {
        let (s, i) = example_files("check");
        let g = write_tmp(
            "g1.graph",
            "(c1, f, _N); (c3, f, _N); (_N, f, c2); (_N, h, hx); (_N, h, hy);",
        );
        dispatch(&v(&[
            "check",
            "--setting",
            &s,
            "--instance",
            &i,
            "--graph",
            &g,
        ]))
        .unwrap();
    }

    #[test]
    fn certain_runs() {
        let (s, i) = example_files("certain");
        dispatch(&v(&[
            "certain",
            "--setting",
            &s,
            "--instance",
            &i,
            "--nre",
            "f.f*.[h].f-.(f-)*",
            "--pair",
            "c1,c3",
        ]))
        .unwrap();
        dispatch(&v(&[
            "cert-query",
            "--setting",
            &s,
            "--instance",
            &i,
            "--cnre",
            "(x, f.f*, y)",
        ]))
        .unwrap();
    }

    #[test]
    fn reduce_runs() {
        let f = write_tmp("f.cnf", "p cnf 3 2\n1 -2 3 0\n-1 2 -3 0\n");
        dispatch(&v(&["reduce", "--dimacs", &f])).unwrap();
        dispatch(&v(&["reduce", "--dimacs", &f, "--sameas"])).unwrap();
    }

    #[test]
    fn direct_runs() {
        let i = write_tmp("rel.facts", "knows(a, b); knows(b, c);");
        dispatch(&v(&["direct", "--schema", "knows/2", "--instance", &i])).unwrap();
        dispatch(&v(&[
            "direct",
            "--schema",
            "knows/2",
            "--instance",
            &i,
            "--reify",
        ]))
        .unwrap();
    }

    #[test]
    fn help_and_errors() {
        dispatch(&v(&["help"])).unwrap();
        dispatch(&[]).unwrap();
        assert!(dispatch(&v(&["bogus"])).is_err());
        assert!(dispatch(&v(&["solve", "--setting", "/nonexistent"])).is_err());
    }
}
