//! Subcommand implementations, built on the session API: each invocation
//! parses the setting/instance once into an [`ExchangeSession`] and runs
//! every step of the command against it, so multi-stage commands (chase +
//! solve, enumerate + verify) share the memoized representative and
//! engine caches.

use crate::args::{read_file, Args};
use gdx_chase::{chase_st_with_nulls, StChaseVariant};
use gdx_common::{GdxError, Result};
use gdx_exchange::representative::RepresentativeOutcome;
use gdx_exchange::{CertainAnswer, ExchangeSession, Existence, Options};
use gdx_graph::{Graph, NullFactory};
use gdx_obs::Obs;
use gdx_pattern::{instantiate_shortest, InstantiationConfig};
use gdx_query::{PlannerMode, PreparedQuery};
use gdx_relational::{Instance, Schema};
use gdx_runtime::Threads;
use gdx_sat::Cnf;

const USAGE: &str = "\
gdx — relational-to-graph data exchange with target constraints

USAGE:
  gdx chase     --setting S.gdx --instance I.facts [--skip-egds] [--dot]
  gdx solve     --setting S.gdx --instance I.facts [--max-graphs N]
  gdx solutions --setting S.gdx --instance I.facts [--limit N]
                [--max-graphs N]
  gdx check     --setting S.gdx --instance I.facts --graph G.graph
  gdx certain   --setting S.gdx --instance I.facts --nre EXPR --pair C1,C2
                [--max-graphs N]
  gdx cert-query --setting S.gdx --instance I.facts --cnre QUERY
  gdx explain   --setting S.gdx --instance I.facts --cnre QUERY
                [--format text|json] [--materialize]
  gdx reduce    --dimacs F.cnf [--sameas]
  gdx direct    --schema DECLS --instance I.facts [--reify]
  gdx sim run   [--seeds N] [--start S] [--oracle NAME] [--out DIR]
                [--max-failures N]
  gdx sim replay --file R.repro
  gdx serve     --addr HOST:PORT [--setting S.gdx --instance I.facts]
                [--workers N] [--max-sessions N] [--queue-depth N]
                [--default-deadline-ms N]
  gdx lint      [--format text|json] [--warnings] [--root DIR]
  gdx info
  gdx help

SERVE (HTTP front end over warm sessions, see ARCHITECTURE.md):
  binds HOST:PORT (port 0 picks one; the bound address is printed as
  `listening on ADDR`) and serves /healthz, /metrics and the JSON
  endpoints /v1/is_solution /v1/certain /v1/certain_answers
  /v1/solutions over a pool of --max-sessions warm sessions (0
  disables pooling). --setting/--instance files become the default
  workload; requests may carry their own inline. When the admission
  queue (--queue-depth) is full, new connections get 429 + Retry-After.
  --default-deadline-ms applies to requests that set no deadline_ms.

LINT (workspace invariant checker, see ARCHITECTURE.md):
  mechanically enforces the determinism, panic-hygiene and locking
  contracts over every workspace crate (same engine as `cargo run -p
  gdx-lint -- check`); exits non-zero on violations or stale allows.

SIMULATION (differential fuzzing, see ARCHITECTURE.md):
  oracles: replay | chase-mode | planner | threads | sat | fork | faults
           (default: all). Each seed deterministically generates a
           setting, instance and op trace; failures are auto-shrunk to
           minimal repro files (written to --out DIR when given).
  replay exits non-zero while the recorded failure still reproduces.

SHARED OPTIONS (every subcommand):
  --threads N       worker threads for the parallel runtime (default:
                    GDX_THREADS env, else the machine's parallelism);
                    results are identical at any worker count
  --max-graphs N    candidate-instantiation cap (default 256)
  --materialize     force the materializing baseline for certain-answer
                    evaluation (certain / cert-query / explain)
  --null-seed N     first fresh-null name (~N) used by the chase
  --deadline-ms N   best-effort wall-clock budget for the enumeration
                    behind solutions / certain / cert-query; on expiry
                    the result degrades to an inexact prefix (definite
                    verdicts are never flipped). Measures real time, so
                    combining it with --metrics makes dumps run-dependent

OBSERVABILITY (chase / solutions / certain / cert-query):
  --metrics FMT     after the result, dump the engine metric registry
                    (text | json); deterministic — recording never
                    perturbs outputs or timings the answers depend on
  --trace N         after the result, print the last N span/trace
                    events (enter/exit/point, most recent last)
  explain prints per-atom access-path decisions (materialize vs demand)
  with the planner's cost estimates, against the canonical instantiation
  of the chased universal representative.

FILE FORMATS:
  settings: the DSL (source{..} target{..} sttgd.. egd.. tgd.. sameas..)
  instances: fact lists        Flight(01, c1, c2); Hotel(01, hx);
  graphs: edge lists           (c1, f, _N); (_N, h, hx);
  formulas: DIMACS cnf
";

/// Dispatches on the first argument.
pub fn dispatch(argv: &[String]) -> Result<()> {
    let Some(cmd) = argv.first() else {
        println!("{USAGE}");
        return Ok(());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "chase" => cmd_chase(rest),
        "solve" => cmd_solve(rest),
        "solutions" => cmd_solutions(rest),
        "check" => cmd_check(rest),
        "certain" => cmd_certain(rest),
        "cert-query" => cmd_cert_query(rest),
        "explain" => cmd_explain(rest),
        "reduce" => cmd_reduce(rest),
        "direct" => cmd_direct(rest),
        "sim" => cmd_sim(rest),
        "serve" => cmd_serve(rest),
        "lint" => cmd_lint(rest),
        "info" => cmd_info(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(GdxError::schema(format!(
            "unknown subcommand `{other}` (try `gdx help`)"
        ))),
    }
}

/// Boolean flags shared by the session-backed solver subcommands.
const SOLVER_FLAGS: &[&str] = &["materialize"];

/// `--threads N` (explicit worker count); absent = [`Threads::Auto`],
/// which honours the `GDX_THREADS` environment variable before falling
/// back to the machine's available parallelism.
fn threads_flag(a: &Args) -> Result<Threads> {
    Ok(match a.get("threads") {
        None => Threads::Auto,
        Some(_) => Threads::Fixed(a.get_usize("threads", 0)?.max(1)),
    })
}

/// `--deadline-ms N` as microseconds, if given.
fn deadline_flag(a: &Args) -> Result<Option<u64>> {
    Ok(match a.get("deadline-ms") {
        None => None,
        Some(_) => Some((a.get_usize("deadline-ms", 0)? as u64).saturating_mul(1000)),
    })
}

fn options(a: &Args) -> Result<Options> {
    Ok(Options {
        instantiation: InstantiationConfig {
            max_graphs: a.get_usize("max-graphs", 256)?,
            ..InstantiationConfig::default()
        },
        planner: if a.has("materialize") {
            PlannerMode::Materialize
        } else {
            PlannerMode::Auto
        },
        null_seed: a.get_usize("null-seed", 0)? as u64,
        threads: threads_flag(a)?,
        deadline_micros: deadline_flag(a)?,
        ..Options::default()
    })
}

fn load_session(a: &Args) -> Result<ExchangeSession> {
    let setting = gdx_mapping::dsl::parse_setting(&read_file(a.require("setting")?)?)?;
    let instance = Instance::parse(setting.source.clone(), &read_file(a.require("instance")?)?)?;
    let mut session = ExchangeSession::new(setting, instance).with_options(options(a)?);
    if deadline_flag(a)?.is_some() {
        // A budget needs a clock that moves: the CLI is an entry point,
        // so it injects real time (library code stays clock-free). This
        // supersedes the byte-stable NoopClock handle `--metrics` would
        // pick — documented under --deadline-ms in the usage text.
        session.set_obs(gdx_server::monotonic_obs());
    } else if let Some(obs) = obs_flags(a)? {
        session.set_obs(obs);
    }
    Ok(session)
}

/// `--metrics text|json` and `--trace N`: when either is given, returns
/// an enabled observability handle to attach to the session. The handle
/// uses the no-op clock, so the dumps are byte-stable across runs and
/// machines (timestamps would make `--metrics json` output flaky).
fn obs_flags(a: &Args) -> Result<Option<Obs>> {
    let metrics = match a.get("metrics") {
        None | Some("text") | Some("json") => a.get("metrics"),
        Some(other) => {
            return Err(GdxError::schema(format!(
                "--metrics expects `text` or `json`, got `{other}`"
            )))
        }
    };
    let trace = a
        .get("trace")
        .map(|_| a.get_usize("trace", 0))
        .transpose()?;
    Ok((metrics.is_some() || trace.is_some()).then(Obs::enabled))
}

/// Prints the registry dump and/or trace tail requested by the flags.
/// Runs after the command's own output so results stay script-friendly.
fn emit_obs(a: &Args, session: &ExchangeSession) -> Result<()> {
    let obs = session.obs();
    if !obs.is_enabled() {
        return Ok(());
    }
    match a.get("metrics") {
        Some("json") => println!("{}", obs.render_metrics_json()),
        Some(_) => print!("{}", obs.render_metrics_text()),
        None => {}
    }
    if a.has("trace") {
        print!("{}", obs.render_trace(a.get_usize("trace", 0)?));
    }
    Ok(())
}

fn cmd_chase(argv: &[String]) -> Result<()> {
    let a = Args::parse(argv, &["materialize", "skip-egds", "dot"])?;
    let mut session = load_session(&a)?;
    let pattern = if a.has("skip-egds") {
        chase_st_with_nulls(
            session.instance(),
            session.setting(),
            StChaseVariant::Oblivious,
            NullFactory::starting_at(session.options().null_seed),
        )?
        .pattern
    } else {
        let outcome = session.representative()?.clone();
        match outcome {
            RepresentativeOutcome::Representative(rep) => {
                eprintln!("egd phase: {} merges", session.representative_merges());
                rep.pattern
            }
            RepresentativeOutcome::ChaseFailed => {
                let ((c1, c2), _) = session
                    .representative_failure()
                    .expect("failed chase records its clash");
                println!("CHASE FAILED: constants {c1} and {c2} forced equal — no solution");
                return Ok(());
            }
        }
    };
    if a.has("dot") {
        println!("{}", pattern.to_dot());
    } else {
        print!("{pattern}");
    }
    emit_obs(&a, &session)
}

fn cmd_solve(argv: &[String]) -> Result<()> {
    let a = Args::parse(argv, SOLVER_FLAGS)?;
    let mut session = load_session(&a)?;
    match session.solution_exists()? {
        Existence::Exists(g) => {
            println!("EXISTS");
            print!("{g}");
        }
        Existence::NoSolution => println!("NO SOLUTION"),
        Existence::Unknown(why) => println!("UNKNOWN ({why})"),
    }
    emit_obs(&a, &session)
}

fn cmd_solutions(argv: &[String]) -> Result<()> {
    let a = Args::parse(argv, SOLVER_FLAGS)?;
    let limit = a.get_usize("limit", usize::MAX)?;
    let mut session = load_session(&a)?;
    let mut count = 0usize;
    let mut exhausted = false;
    let mut stream = session.solutions()?;
    while count < limit {
        let Some(g) = stream.next() else {
            exhausted = true;
            break;
        };
        let g = g?;
        count += 1;
        println!("-- solution {count} --");
        print!("{g}");
    }
    if count == 0 && !exhausted {
        println!("no solutions requested (--limit 0)");
    } else if count == 0 {
        println!(
            "no solutions within bounds{}",
            if stream.exact() {
                " (provably none)"
            } else {
                ""
            }
        );
    } else if exhausted && stream.exact() {
        println!("-- family exhausted: these are all minimal solutions --");
    }
    drop(stream);
    emit_obs(&a, &session)
}

fn cmd_check(argv: &[String]) -> Result<()> {
    let a = Args::parse(argv, SOLVER_FLAGS)?;
    let mut session = load_session(&a)?;
    let graph = Graph::parse(&read_file(a.require("graph")?)?)?;
    if session.is_solution(&graph)? {
        println!("SOLUTION");
    } else {
        println!("NOT A SOLUTION");
    }
    emit_obs(&a, &session)
}

fn cmd_certain(argv: &[String]) -> Result<()> {
    let a = Args::parse(argv, SOLVER_FLAGS)?;
    let mut session = load_session(&a)?;
    let nre = gdx_nre::parse::parse_nre(a.require("nre")?)?;
    let pair = a.require("pair")?;
    let (c1, c2) = pair
        .split_once(',')
        .ok_or_else(|| GdxError::schema(format!("--pair expects `c1,c2`, got `{pair}`")))?;
    match session.certain_pair(&nre, c1.trim(), c2.trim())? {
        CertainAnswer::Certain => println!("CERTAIN"),
        CertainAnswer::NotCertain(g) => {
            println!("NOT CERTAIN — counterexample solution:");
            print!("{g}");
        }
        CertainAnswer::Unknown(why) => println!("UNKNOWN ({why})"),
    }
    emit_obs(&a, &session)
}

fn cmd_cert_query(argv: &[String]) -> Result<()> {
    let a = Args::parse(argv, SOLVER_FLAGS)?;
    let mut session = load_session(&a)?;
    let query = PreparedQuery::parse(a.require("cnre")?)?;
    let (rows, exact) = session.certain_answers(&query)?;
    println!(
        "{} certain answer(s){}:",
        rows.len(),
        if exact { "" } else { " (within bounds)" }
    );
    for row in rows {
        let cells: Vec<String> = query
            .variables()
            .iter()
            .zip(&row)
            .map(|(v, n)| format!("{v}={n}"))
            .collect();
        println!("  {}", cells.join(", "));
    }
    emit_obs(&a, &session)
}

/// `gdx explain` — show the access-path plan (materialize vs demand,
/// with the cost estimates behind each choice) the planner picks for a
/// CNRE over the canonical instantiation of the chased representative.
fn cmd_explain(argv: &[String]) -> Result<()> {
    let a = Args::parse(argv, SOLVER_FLAGS)?;
    let format = a.get("format").unwrap_or("text");
    if format != "text" && format != "json" {
        return Err(GdxError::schema(format!(
            "--format expects `text` or `json`, got `{format}`"
        )));
    }
    let mut session = load_session(&a)?;
    let query = PreparedQuery::parse(a.require("cnre")?)?;
    let rep = match session.representative()?.clone() {
        RepresentativeOutcome::Representative(rep) => rep,
        RepresentativeOutcome::ChaseFailed => {
            println!("CHASE FAILED: no solution exists — nothing to plan against");
            return Ok(());
        }
    };
    let graph = instantiate_shortest(&rep.pattern)?;
    let explain = query.explain(&graph, session.options().planner);
    if format == "json" {
        println!("{}", explain.render_json());
    } else {
        println!(
            "graph: canonical instantiation — {} node(s), {} edge(s)",
            graph.node_count(),
            graph.edge_count()
        );
        print!("{}", explain.render_text());
    }
    emit_obs(&a, &session)
}

fn cmd_reduce(argv: &[String]) -> Result<()> {
    let a = Args::parse(argv, &["sameas"])?;
    let cnf = Cnf::from_dimacs(&read_file(a.require("dimacs")?)?)?;
    let flavor = if a.has("sameas") {
        gdx_exchange::reduction::ReductionFlavor::SameAs
    } else {
        gdx_exchange::reduction::ReductionFlavor::Egd
    };
    let red = gdx_exchange::Reduction::from_cnf(&cnf, flavor)?;
    println!(
        "# Theorem 4.1 reduction of {} ({} vars, {} clauses)",
        a.require("dimacs")?,
        cnf.num_vars,
        cnf.clauses.len()
    );
    print!("{}", red.setting);
    println!("\n# fixed instance I_ρ:");
    print!("{}", red.instance);
    Ok(())
}

fn cmd_direct(argv: &[String]) -> Result<()> {
    let a = Args::parse(argv, &["reify"])?;
    let schema = Schema::parse(a.require("schema")?)?;
    let instance = Instance::parse(schema, &read_file(a.require("instance")?)?)?;
    let graph = if a.has("reify") {
        gdx_exchange::direct::direct_map_reified(&instance)
    } else {
        gdx_exchange::direct::direct_map_binary(&instance)?
    };
    print!("{graph}");
    Ok(())
}

fn cmd_sim(argv: &[String]) -> Result<()> {
    let Some(sub) = argv.first() else {
        return Err(GdxError::schema(
            "`gdx sim` needs a subcommand: run | replay (try `gdx help`)",
        ));
    };
    // Ops execute under catch_unwind and panics are recorded as harness
    // failures; the default hook would still spam a backtrace per caught
    // panic, so silence it for the binary (tests keep theirs).
    if !cfg!(test) {
        std::panic::set_hook(Box::new(|_| {}));
    }
    match sub.as_str() {
        "run" => cmd_sim_run(&argv[1..]),
        "replay" => cmd_sim_replay(&argv[1..]),
        other => Err(GdxError::schema(format!(
            "unknown sim subcommand `{other}` (expected run | replay)"
        ))),
    }
}

/// Resolves `--oracle` into the list of oracles to sweep.
fn sim_oracles(a: &Args) -> Result<Vec<gdx_sim::Oracle>> {
    match a.get("oracle") {
        None | Some("all") => Ok(gdx_sim::Oracle::ALL.to_vec()),
        Some(name) => gdx_sim::Oracle::from_name(name)
            .map(|o| vec![o])
            .ok_or_else(|| {
                GdxError::schema(format!(
                    "unknown oracle `{name}` (expected replay | chase-mode | planner | \
                 threads | sat | fork | faults | all)"
                ))
            }),
    }
}

fn cmd_sim_run(argv: &[String]) -> Result<()> {
    let a = Args::parse(argv, &[])?;
    let seeds = a.get_usize("seeds", 100)? as u64;
    let start = a.get_usize("start", 0)? as u64;
    let max_failures = a.get_usize("max-failures", 0)?;
    let out_dir = a.get("out").map(str::to_owned);
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| GdxError::schema(format!("cannot create --out {dir}: {e}")))?;
    }
    let mut total = 0usize;
    for oracle in sim_oracles(&a)? {
        let report = gdx_sim::run_campaign(oracle, start, seeds, max_failures);
        println!(
            "oracle {:<10} {:>4} seed(s): {}",
            oracle.name(),
            report.seeds_run,
            if report.failures.is_empty() {
                "clean".to_owned()
            } else {
                format!("{} failure(s)", report.failures.len())
            }
        );
        for f in &report.failures {
            total += 1;
            println!("  seed {}: {}", f.seed, f.original.summary());
            let text = f.repro.to_text();
            match &out_dir {
                Some(dir) => {
                    let path = format!("{dir}/{}-seed{}.repro", oracle.name(), f.seed);
                    std::fs::write(&path, &text)
                        .map_err(|e| GdxError::schema(format!("cannot write {path}: {e}")))?;
                    println!("  shrunk repro written to {path}");
                }
                None => print!("{text}"),
            }
        }
    }
    if total > 0 {
        return Err(GdxError::Internal(format!(
            "simulation found {total} failing seed(s) — shrunk repros above"
        )));
    }
    Ok(())
}

fn cmd_sim_replay(argv: &[String]) -> Result<()> {
    let a = Args::parse(argv, &[])?;
    let text = read_file(a.require("file")?)?;
    match gdx_sim::replay_text(&text).map_err(GdxError::schema)? {
        gdx_sim::Replayed::Clean { recorded } if recorded == "none" => {
            println!("CLEAN — scenario passes all checks");
            Ok(())
        }
        gdx_sim::Replayed::Clean { recorded } => {
            println!("FIXED — recorded failure no longer reproduces:");
            println!("  recorded: {recorded}");
            Ok(())
        }
        gdx_sim::Replayed::Reproduced(f) => {
            println!("REPRODUCED — failure matches the recorded summary:");
            println!("  {}", f.summary());
            Err(GdxError::Internal(
                "recorded failure still reproduces".into(),
            ))
        }
        gdx_sim::Replayed::Diverged { recorded, observed } => {
            println!("DIVERGED — scenario fails differently than recorded:");
            println!("  recorded: {recorded}");
            println!("  observed: {}", observed.summary());
            Err(GdxError::Internal("replay diverged from recording".into()))
        }
    }
}

/// `gdx serve` — boot the HTTP front end and block until killed. The
/// bound address is printed (and flushed) first so harnesses that bind
/// port 0 can read the picked port off stdout.
fn cmd_serve(argv: &[String]) -> Result<()> {
    use std::io::Write;
    let a = Args::parse(argv, SOLVER_FLAGS)?;
    let mut config = gdx_server::ServerConfig::new(a.require("addr")?);
    if let Some(path) = a.get("setting") {
        config.default_setting = Some(read_file(path)?.into());
    }
    if let Some(path) = a.get("instance") {
        config.default_instance = Some(read_file(path)?.into());
    }
    config.workers = a.get_usize("workers", config.workers)?;
    config.max_sessions = a.get_usize("max-sessions", config.max_sessions)?;
    config.queue_depth = a.get_usize("queue-depth", config.queue_depth)?;
    if a.get("default-deadline-ms").is_some() {
        config.default_deadline_micros =
            Some((a.get_usize("default-deadline-ms", 0)? as u64).saturating_mul(1000));
    }
    config.base_options = options(&a)?;
    let handle = gdx_server::serve(config)
        .map_err(|e| GdxError::schema(format!("cannot start server: {e}")))?;
    println!("listening on {}", handle.addr());
    drop(std::io::stdout().flush());
    handle.join();
    Ok(())
}

/// `gdx lint` — run the workspace invariant checker (gdx-lint) over
/// the repository containing the current directory (or `--root DIR`).
fn cmd_lint(argv: &[String]) -> Result<()> {
    let a = Args::parse(argv, &["warnings"])?;
    let format = a.get("format").unwrap_or("text");
    if format != "text" && format != "json" {
        return Err(GdxError::schema(format!(
            "--format expects `text` or `json`, got `{format}`"
        )));
    }
    let root = match a.get("root") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir()
                .map_err(|e| GdxError::schema(format!("current dir: {e}")))?;
            gdx_lint::find_workspace_root(&cwd).ok_or_else(|| {
                GdxError::schema("no [workspace] Cargo.toml above the current dir".to_owned())
            })?
        }
    };
    let report = gdx_lint::check_workspace(&root)
        .map_err(|e| GdxError::schema(format!("walking {}: {e}", root.display())))?;
    if format == "json" {
        print!("{}", gdx_lint::render_json(&report));
    } else {
        print!("{}", gdx_lint::render_text(&report, a.has("warnings")));
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(GdxError::schema(format!(
            "lint: {} error(s), {} stale allow(s)",
            report.errors(),
            report.allows.iter().filter(|al| !al.used).count()
        )))
    }
}

fn cmd_info(argv: &[String]) -> Result<()> {
    let a = Args::parse(argv, &[])?;
    let configured = threads_flag(&a)?;
    println!("gdx {}", env!("CARGO_PKG_VERSION"));
    println!(
        "detected parallelism: {}",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    match std::env::var("GDX_THREADS") {
        Ok(v) => println!("GDX_THREADS: {v}"),
        Err(_) => println!("GDX_THREADS: (unset)"),
    }
    println!("effective workers: {}", configured.resolve());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_tmp(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(format!("gdx-cli-test-{name}"));
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn v(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    /// Each test gets its own files: tests run in parallel and must not
    /// race on a shared temp path.
    fn example_files(tag: &str) -> (String, String) {
        let setting = write_tmp(
            &format!("{tag}-setting.gdx"),
            "source { Flight/3; Hotel/2 }
             target { f; h }
             sttgd Flight(x1, x2, x3), Hotel(x1, x4)
                   -> exists y : (x2, f.f*, y), (y, h, x4), (y, f.f*, x3);
             egd (x1, h, x3), (x2, h, x3) -> x1 = x2;",
        );
        let instance = write_tmp(
            &format!("{tag}-instance.facts"),
            "Flight(01, c1, c2); Flight(02, c3, c2);
             Hotel(01, hx); Hotel(01, hy); Hotel(02, hx);",
        );
        (setting, instance)
    }

    #[test]
    fn chase_and_solve_run() {
        let (s, i) = example_files("chase");
        dispatch(&v(&["chase", "--setting", &s, "--instance", &i])).unwrap();
        dispatch(&v(&[
            "chase",
            "--setting",
            &s,
            "--instance",
            &i,
            "--skip-egds",
        ]))
        .unwrap();
        dispatch(&v(&["solve", "--setting", &s, "--instance", &i])).unwrap();
    }

    #[test]
    fn solutions_stream_runs() {
        let (s, i) = example_files("solutions");
        dispatch(&v(&[
            "solutions",
            "--setting",
            &s,
            "--instance",
            &i,
            "--limit",
            "2",
        ]))
        .unwrap();
    }

    #[test]
    fn check_accepts_g1() {
        let (s, i) = example_files("check");
        let g = write_tmp(
            "g1.graph",
            "(c1, f, _N); (c3, f, _N); (_N, f, c2); (_N, h, hx); (_N, h, hy);",
        );
        dispatch(&v(&[
            "check",
            "--setting",
            &s,
            "--instance",
            &i,
            "--graph",
            &g,
        ]))
        .unwrap();
    }

    #[test]
    fn certain_runs() {
        let (s, i) = example_files("certain");
        dispatch(&v(&[
            "certain",
            "--setting",
            &s,
            "--instance",
            &i,
            "--nre",
            "f.f*.[h].f-.(f-)*",
            "--pair",
            "c1,c3",
        ]))
        .unwrap();
        dispatch(&v(&[
            "cert-query",
            "--setting",
            &s,
            "--instance",
            &i,
            "--cnre",
            "(x, f.f*, y)",
            "--materialize",
        ]))
        .unwrap();
    }

    #[test]
    fn explain_runs() {
        let (s, i) = example_files("explain");
        for fmt in ["text", "json"] {
            dispatch(&v(&[
                "explain",
                "--setting",
                &s,
                "--instance",
                &i,
                "--cnre",
                "(x, f.f*, y), (y, h, \"hx\")",
                "--format",
                fmt,
            ]))
            .unwrap();
        }
        assert!(dispatch(&v(&[
            "explain",
            "--setting",
            &s,
            "--instance",
            &i,
            "--cnre",
            "(x, f, y)",
            "--format",
            "yaml",
        ]))
        .is_err());
    }

    #[test]
    fn metrics_and_trace_flags_run() {
        let (s, i) = example_files("metrics");
        dispatch(&v(&[
            "chase",
            "--setting",
            &s,
            "--instance",
            &i,
            "--metrics",
            "json",
            "--trace",
            "10",
        ]))
        .unwrap();
        dispatch(&v(&[
            "solve",
            "--setting",
            &s,
            "--instance",
            &i,
            "--metrics",
            "text",
        ]))
        .unwrap();
        assert!(dispatch(&v(&[
            "chase",
            "--setting",
            &s,
            "--instance",
            &i,
            "--metrics",
            "csv",
        ]))
        .is_err());
    }

    #[test]
    fn reduce_runs() {
        let f = write_tmp("f.cnf", "p cnf 3 2\n1 -2 3 0\n-1 2 -3 0\n");
        dispatch(&v(&["reduce", "--dimacs", &f])).unwrap();
        dispatch(&v(&["reduce", "--dimacs", &f, "--sameas"])).unwrap();
    }

    #[test]
    fn direct_runs() {
        let i = write_tmp("rel.facts", "knows(a, b); knows(b, c);");
        dispatch(&v(&["direct", "--schema", "knows/2", "--instance", &i])).unwrap();
        dispatch(&v(&[
            "direct",
            "--schema",
            "knows/2",
            "--instance",
            &i,
            "--reify",
        ]))
        .unwrap();
    }

    #[test]
    fn help_and_errors() {
        dispatch(&v(&["help"])).unwrap();
        dispatch(&[]).unwrap();
        assert!(dispatch(&v(&["bogus"])).is_err());
        assert!(dispatch(&v(&["solve", "--setting", "/nonexistent"])).is_err());
    }

    #[test]
    fn sim_run_small_campaign_is_clean() {
        // A handful of seeds per oracle; the dedicated ≥500-seed sweep
        // lives in gdx-sim's own test suite.
        dispatch(&v(&["sim", "run", "--seeds", "3"])).unwrap();
        dispatch(&v(&[
            "sim", "run", "--seeds", "5", "--start", "7", "--oracle", "replay",
        ]))
        .unwrap();
    }

    #[test]
    fn sim_replay_round_trips_a_generated_scenario() {
        let repro = gdx_sim::Repro {
            oracle: gdx_sim::Oracle::Replay,
            failure: "none".to_owned(),
            scenario: gdx_sim::generate(3, gdx_sim::Oracle::Replay),
        };
        let f = write_tmp("clean.repro", &repro.to_text());
        dispatch(&v(&["sim", "replay", "--file", &f])).unwrap();
    }

    #[test]
    fn sim_rejects_bad_invocations() {
        assert!(dispatch(&v(&["sim"])).is_err());
        assert!(dispatch(&v(&["sim", "bogus"])).is_err());
        assert!(dispatch(&v(&["sim", "run", "--oracle", "tea-leaves"])).is_err());
        assert!(dispatch(&v(&["sim", "replay", "--file", "/nonexistent"])).is_err());
        let f = write_tmp("garbage.repro", "not a repro");
        assert!(dispatch(&v(&["sim", "replay", "--file", &f])).is_err());
    }

    #[test]
    fn deadline_flag_runs_and_degrades_gracefully() {
        let (s, i) = example_files("deadline");
        // A zero budget on the real clock truncates (inexact prefix)
        // without erroring; a generous one completes normally.
        for ms in ["0", "10000"] {
            dispatch(&v(&[
                "cert-query",
                "--setting",
                &s,
                "--instance",
                &i,
                "--cnre",
                "(x, f.f*, y)",
                "--deadline-ms",
                ms,
            ]))
            .unwrap();
        }
        dispatch(&v(&[
            "solutions",
            "--setting",
            &s,
            "--instance",
            &i,
            "--limit",
            "2",
            "--deadline-ms",
            "10000",
        ]))
        .unwrap();
        assert!(dispatch(&v(&[
            "cert-query",
            "--setting",
            &s,
            "--instance",
            &i,
            "--cnre",
            "(x, f.f*, y)",
            "--deadline-ms",
            "soon",
        ]))
        .is_err());
    }

    #[test]
    fn info_and_threads_flag() {
        dispatch(&v(&["info"])).unwrap();
        dispatch(&v(&["info", "--threads", "2"])).unwrap();
        let (s, i) = example_files("threads");
        for n in ["1", "2"] {
            dispatch(&v(&[
                "solve",
                "--setting",
                &s,
                "--instance",
                &i,
                "--threads",
                n,
            ]))
            .unwrap();
        }
        assert!(dispatch(&v(&[
            "solve",
            "--threads",
            "x",
            "--setting",
            &s,
            "--instance",
            &i
        ]))
        .is_err());
    }
}
