//! End-to-end CLI tests: run the real `gdx` binary on the quickstart
//! setting (Example 2.2) and assert on its stdout, one test per
//! subcommand. `CARGO_BIN_EXE_gdx` points at the binary Cargo built for
//! this test run.

use std::path::PathBuf;
use std::process::{Command, Output};

const SETTING: &str = "source { Flight/3; Hotel/2 }
target { f; h }
sttgd Flight(x1, x2, x3), Hotel(x1, x4)
      -> exists y : (x2, f.f*, y), (y, h, x4), (y, f.f*, x3);
egd (x1, h, x3), (x2, h, x3) -> x1 = x2;";

const INSTANCE: &str = "Flight(01, c1, c2); Flight(02, c3, c2);
Hotel(01, hx); Hotel(01, hy); Hotel(02, hx);";

const G1: &str = "(c1, f, _N); (c3, f, _N); (_N, f, c2); (_N, h, hx); (_N, h, hy);";

/// Writes the quickstart fixture files under a per-test temp directory.
fn fixture(tag: &str) -> (String, String) {
    let dir = std::env::temp_dir().join(format!("gdx-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let write = |name: &str, contents: &str| -> String {
        let p: PathBuf = dir.join(name);
        std::fs::write(&p, contents).unwrap();
        p.to_string_lossy().into_owned()
    };
    (
        write("setting.gdx", SETTING),
        write("instance.facts", INSTANCE),
    )
}

fn gdx(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gdx"))
        .args(args)
        .output()
        .expect("spawn gdx binary")
}

fn stdout_of(args: &[&str]) -> String {
    let out = gdx(args);
    assert!(
        out.status.success(),
        "gdx {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

#[test]
fn chase_prints_figure_5_pattern() {
    let (s, i) = fixture("chase");
    let out = stdout_of(&["chase", "--setting", &s, "--instance", &i]);
    // Figure 5: the two hx stays collapse; both city constants and both
    // hotels survive in the chased pattern.
    for name in ["c1", "c2", "c3", "hx", "hy"] {
        assert!(out.contains(name), "pattern must mention {name}:\n{out}");
    }
    assert!(out.contains("f.f*"), "NRE edges survive the chase:\n{out}");
    // The --dot variant emits graphviz.
    let dot = stdout_of(&["chase", "--setting", &s, "--instance", &i, "--dot"]);
    assert!(dot.contains("digraph"), "dot output expected:\n{dot}");
}

#[test]
fn solve_reports_exists_with_witness() {
    let (s, i) = fixture("solve");
    let out = stdout_of(&["solve", "--setting", &s, "--instance", &i]);
    assert!(
        out.starts_with("EXISTS"),
        "quickstart has solutions:\n{out}"
    );
    assert!(out.contains("(c1, f"), "witness graph printed:\n{out}");
}

#[test]
fn solutions_streams_verified_graphs() {
    let (s, i) = fixture("solutions");
    let out = stdout_of(&[
        "solutions",
        "--setting",
        &s,
        "--instance",
        &i,
        "--limit",
        "2",
    ]);
    assert!(out.contains("-- solution 1 --"), "{out}");
    assert!(out.contains("-- solution 2 --"), "{out}");
    assert!(!out.contains("-- solution 3 --"), "limit respected:\n{out}");
}

#[test]
fn check_judges_g1_and_a_broken_graph() {
    let (s, i) = fixture("check");
    let dir = std::env::temp_dir();
    let good = dir.join("gdx-e2e-g1.graph");
    std::fs::write(&good, G1).unwrap();
    let out = stdout_of(&[
        "check",
        "--setting",
        &s,
        "--instance",
        &i,
        "--graph",
        good.to_str().unwrap(),
    ]);
    assert_eq!(out.trim(), "SOLUTION");

    let bad = dir.join("gdx-e2e-bad.graph");
    std::fs::write(&bad, "(c1, f, c2);").unwrap();
    let out = stdout_of(&[
        "check",
        "--setting",
        &s,
        "--instance",
        &i,
        "--graph",
        bad.to_str().unwrap(),
    ]);
    assert_eq!(out.trim(), "NOT A SOLUTION");
}

#[test]
fn certain_decides_both_verdicts() {
    let (s, i) = fixture("certain");
    // (c1, f.f*, c2) is provably certain via the pattern-level proof.
    let out = stdout_of(&[
        "certain",
        "--setting",
        &s,
        "--instance",
        &i,
        "--nre",
        "f.f*",
        "--pair",
        "c1,c2",
    ]);
    assert_eq!(out.trim(), "CERTAIN");
    // The reverse pair has a counterexample solution.
    let out = stdout_of(&[
        "certain",
        "--setting",
        &s,
        "--instance",
        &i,
        "--nre",
        "f.f*",
        "--pair",
        "c2,c1",
    ]);
    assert!(out.starts_with("NOT CERTAIN"), "{out}");
}

#[test]
fn cert_query_lists_the_paper_answers() {
    let (s, i) = fixture("cert-query");
    let out = stdout_of(&[
        "cert-query",
        "--setting",
        &s,
        "--instance",
        &i,
        "--cnre",
        "(x1, f.f*.[h].f-.(f-)*, x2)",
    ]);
    assert!(
        out.starts_with("4 certain answer(s)"),
        "the paper's four certain pairs:\n{out}"
    );
    for pair in [
        "x1=c1, x2=c1",
        "x1=c1, x2=c3",
        "x1=c3, x2=c1",
        "x1=c3, x2=c3",
    ] {
        assert!(out.contains(pair), "missing {pair}:\n{out}");
    }
}

#[test]
fn explain_prints_per_atom_decisions() {
    let (s, i) = fixture("explain");
    let out = stdout_of(&[
        "explain",
        "--setting",
        &s,
        "--instance",
        &i,
        "--cnre",
        "(x1, f.f*.[h].f-.(f-)*, x2), (x1, f, z)",
    ]);
    assert!(
        out.contains("plan mode=auto atoms=2"),
        "plan header expected:\n{out}"
    );
    // Every atom line carries its decision and the estimates behind it.
    for needle in ["est_pairs=", "est_fanout=", "demand_cost=", "-> "] {
        assert_eq!(
            out.matches(needle).count(),
            2,
            "two per-atom `{needle}` entries expected:\n{out}"
        );
    }
    // The single-label atom over the small representative materializes.
    assert!(out.contains("-> materialize"), "{out}");

    // JSON rendering is stable: identical across two invocations, and
    // forced materialization flips every choice.
    let json_args = [
        "explain",
        "--setting",
        s.as_str(),
        "--instance",
        i.as_str(),
        "--cnre",
        "(x1, f.f*.[h].f-.(f-)*, x2), (x1, f, z)",
        "--format",
        "json",
    ];
    let json = stdout_of(&json_args);
    assert!(
        json.starts_with("{\"mode\": \"auto\", \"atoms\": ["),
        "{json}"
    );
    assert_eq!(json, stdout_of(&json_args), "explain output must be stable");
    let mut forced = json_args.to_vec();
    forced.push("--materialize");
    let forced_out = stdout_of(&forced);
    assert!(
        forced_out.contains("\"mode\": \"materialize\""),
        "{forced_out}"
    );
    assert!(
        !forced_out.contains("\"choice\": \"demand\""),
        "{forced_out}"
    );
}

#[test]
fn metrics_dump_is_stable_and_trace_shows_spans() {
    let (s, i) = fixture("metrics");
    // --threads 1 pins the runtime gauges (worker count, per-worker task
    // histogram) so the dump is byte-stable.
    let args = [
        "cert-query",
        "--setting",
        s.as_str(),
        "--instance",
        i.as_str(),
        "--cnre",
        "(x1, f.f*.[h].f-.(f-)*, x2)",
        "--threads",
        "1",
        "--metrics",
        "json",
    ];
    let out = stdout_of(&args);
    assert!(
        out.starts_with("4 certain answer(s)"),
        "answers precede the dump:\n{out}"
    );
    for metric in [
        "\"egd.merges\": 1",
        "\"session.requests\": 1",
        "\"session.candidates\"",
        "\"session.phase.chase_us\"",
        "\"session.phase.verify_us\"",
    ] {
        assert!(out.contains(metric), "dump must report {metric}:\n{out}");
    }
    // Byte-stable across runs (NoopClock: no wall-clock in the dump).
    assert_eq!(out, stdout_of(&args), "metrics dump must be reproducible");

    // Text format + trace tail.
    let out = stdout_of(&[
        "cert-query",
        "--setting",
        &s,
        "--instance",
        &i,
        "--cnre",
        "(x1, f.f*.[h].f-.(f-)*, x2)",
        "--threads",
        "1",
        "--metrics",
        "text",
        "--trace",
        "50",
    ]);
    assert!(out.contains("counter session.requests 1"), "{out}");
    assert!(out.contains("enter session.certain_answers"), "{out}");
    assert!(out.contains("exit session.certain_answers"), "{out}");
}

#[test]
fn metrics_never_perturb_results() {
    // The observability determinism contract, end to end: stdout up to
    // the dump is identical with and without recording enabled.
    let (s, i) = fixture("metrics-inert");
    let plain = stdout_of(&["solve", "--setting", &s, "--instance", &i, "--threads", "2"]);
    let observed = stdout_of(&[
        "solve",
        "--setting",
        &s,
        "--instance",
        &i,
        "--threads",
        "2",
        "--metrics",
        "text",
    ]);
    assert!(
        observed.starts_with(&plain),
        "observed run must print the same result before the dump:\n{observed}"
    );
}

#[test]
fn reduce_emits_a_setting_and_instance() {
    let dir = std::env::temp_dir();
    let cnf = dir.join("gdx-e2e.cnf");
    std::fs::write(&cnf, "p cnf 3 2\n1 -2 3 0\n-1 2 -3 0\n").unwrap();
    let out = stdout_of(&["reduce", "--dimacs", cnf.to_str().unwrap()]);
    assert!(out.contains("3 vars, 2 clauses"), "{out}");
    assert!(out.contains("sttgd"), "reduction emits s-t tgds:\n{out}");
    assert!(out.contains("I_ρ"), "fixed instance header:\n{out}");
}

#[test]
fn direct_maps_binary_relations() {
    let dir = std::env::temp_dir();
    let facts = dir.join("gdx-e2e-direct.facts");
    std::fs::write(&facts, "knows(a, b); knows(b, c);").unwrap();
    let out = stdout_of(&[
        "direct",
        "--schema",
        "knows/2",
        "--instance",
        facts.to_str().unwrap(),
    ]);
    assert!(out.contains("(a, knows, b)"), "{out}");
    assert!(out.contains("(b, knows, c)"), "{out}");
}

#[test]
fn errors_exit_nonzero() {
    let out = gdx(&["bogus"]);
    assert!(!out.status.success());
    let out = gdx(&["solve", "--setting", "/nonexistent"]);
    assert!(!out.status.success());
}

#[test]
fn info_reports_parallelism() {
    let out = stdout_of(&["info"]);
    assert!(out.contains("gdx 0."), "version line expected:\n{out}");
    assert!(
        out.contains("detected parallelism:"),
        "parallelism line expected:\n{out}"
    );
    // `--threads` requests a count; the effective workers are clamped to
    // the machine's detected parallelism (a serial host reports 1, so the
    // chase takes the inline sequential path instead of paying for
    // speculation it cannot cash in).
    let detected = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let out = stdout_of(&["info", "--threads", "3"]);
    let expect = format!("effective workers: {}", 3.min(detected));
    assert!(
        out.contains(&expect),
        "--threads resolves clamped to detected parallelism ({expect}):\n{out}"
    );
}

#[test]
fn thread_counts_do_not_change_output() {
    // The CLI-level determinism check: identical stdout at 1 and 4
    // workers across the session-backed subcommands.
    let (s, i) = fixture("threads");
    for cmd in [
        vec!["solve", "--setting", &s, "--instance", &i],
        vec![
            "solutions",
            "--setting",
            &s,
            "--instance",
            &i,
            "--limit",
            "3",
        ],
        vec![
            "cert-query",
            "--setting",
            &s,
            "--instance",
            &i,
            "--cnre",
            "(x, f.f*, y)",
        ],
    ] {
        let mut one = cmd.clone();
        one.extend(["--threads", "1"]);
        let mut four = cmd.clone();
        four.extend(["--threads", "4"]);
        assert_eq!(
            stdout_of(&one),
            stdout_of(&four),
            "{cmd:?} must print identical output at 1 and 4 workers"
        );
    }
}

#[test]
fn help_documents_sim() {
    let out = stdout_of(&["help"]);
    assert!(out.contains("gdx sim run"), "help lists sim run:\n{out}");
    assert!(
        out.contains("gdx sim replay"),
        "help lists sim replay:\n{out}"
    );
    for oracle in [
        "replay",
        "chase-mode",
        "planner",
        "threads",
        "sat",
        "fork",
        "faults",
    ] {
        assert!(
            out.contains(oracle),
            "help names the {oracle} oracle:\n{out}"
        );
    }
}

#[test]
fn sim_run_and_replay_round_trip() {
    // A two-seed single-oracle campaign is clean and exits zero…
    let out = stdout_of(&["sim", "run", "--seeds", "2", "--oracle", "planner"]);
    assert!(out.contains("clean"), "campaign reports clean:\n{out}");

    // …and a repro file written by hand from the harness's canonical
    // text format replays clean through the binary.
    let dir = std::env::temp_dir().join(format!("gdx-e2e-simreplay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let repro = gdx_sim::Repro {
        oracle: gdx_sim::Oracle::Fork,
        failure: "none".to_owned(),
        scenario: gdx_sim::generate(11, gdx_sim::Oracle::Fork),
    };
    let path = dir.join("clean.repro");
    std::fs::write(&path, repro.to_text()).unwrap();
    let out = stdout_of(&["sim", "replay", "--file", &path.to_string_lossy()]);
    assert!(out.contains("CLEAN"), "replay reports clean:\n{out}");

    // Garbage repro files exit non-zero with a parse diagnostic.
    let bad = dir.join("garbage.repro");
    std::fs::write(&bad, "not a repro").unwrap();
    let out = gdx(&["sim", "replay", "--file", &bad.to_string_lossy()]);
    assert!(!out.status.success(), "garbage repro must fail");
}

#[test]
fn serve_boots_prints_its_address_and_answers_http() {
    use std::io::{BufRead, BufReader, Read, Write};
    let (s, i) = fixture("serve");
    let mut child = Command::new(env!("CARGO_BIN_EXE_gdx"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--setting",
            &s,
            "--instance",
            &i,
            "--workers",
            "2",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn gdx serve");
    // The bound address is the first (flushed) stdout line.
    let mut line = String::new();
    BufReader::new(child.stdout.take().unwrap())
        .read_line(&mut line)
        .unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_owned();

    let ask = |path: &str, body: &str| -> String {
        let mut stream = std::net::TcpStream::connect(&addr).expect("connect to gdx serve");
        write!(
            stream,
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    };
    let response = ask("/v1/certain", r#"{"query": "(\"c1\", f.f*, \"c2\")"}"#);
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert!(response.contains("\"verdict\":\"certain\""), "{response}");
    // The warm pool answers the repeat identically.
    assert_eq!(
        response,
        ask("/v1/certain", r#"{"query": "(\"c1\", f.f*, \"c2\")"}"#)
    );

    child.kill().unwrap();
    child.wait().unwrap();
}

#[test]
fn help_documents_serve() {
    let out = stdout_of(&["help"]);
    assert!(out.contains("gdx serve"), "{out}");
    assert!(out.contains("--max-sessions"), "{out}");
    assert!(out.contains("--deadline-ms"), "{out}");
}

#[test]
fn lint_reports_a_clean_workspace() {
    // The shipped tree must satisfy its own contract; point --root at
    // the workspace explicitly so the test is cwd-independent.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.to_string_lossy().into_owned();
    let out = stdout_of(&["lint", "--root", &root]);
    assert!(out.contains("gdx-lint: clean"), "{out}");
    assert!(out.contains("0 error(s)"), "{out}");

    let json = stdout_of(&["lint", "--root", &root, "--format", "json"]);
    assert!(json.contains("\"clean\": true"), "{json}");
    assert!(json.contains("\"errors\": 0"), "{json}");
}

#[test]
fn help_documents_lint() {
    let out = stdout_of(&["help"]);
    assert!(out.contains("gdx lint"), "{out}");
    assert!(out.contains("invariant checker"), "{out}");
}
