//! Semi-naive vs naive chase equivalence, and cache-survival regressions.
//!
//! The semi-naive worklist engine must be a pure optimization: on every
//! input where the naive round-robin chase terminates, it must terminate
//! with an *isomorphic* graph (identity on constants, nulls renamed), and
//! it must hit the step bound exactly when the naive chase does.

use gdx_chase::{chase_target_tgds, ChaseStats, TgdChaseConfig, TgdChaseEngine, TgdChaseMode};
use gdx_common::{GdxError, Symbol};
use gdx_graph::{is_isomorphic, Graph, NodeId};
use gdx_mapping::TargetTgd;
use gdx_query::Cnre;
use proptest::prelude::*;

fn tgd(body: &str, existential: &[&str], head: &str) -> TargetTgd {
    TargetTgd {
        body: Cnre::parse(body).unwrap(),
        existential: existential.iter().map(|s| Symbol::new(s)).collect(),
        head: Cnre::parse(head).unwrap(),
    }
}

/// Random small graphs over labels f/g/h.
fn arb_graph() -> impl Strategy<Value = Graph> {
    proptest::collection::vec((0u32..5, 0u8..3, 0u32..5), 1..10).prop_map(|edges| {
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..5)
            .map(|i| {
                if i % 2 == 0 {
                    g.add_const(&format!("k{i}"))
                } else {
                    g.add_node(gdx_graph::Node::null(&format!("n{i}")))
                }
            })
            .collect();
        for (s, l, d) in edges {
            let label = ["f", "g", "h"][l as usize];
            g.add_edge_labelled(nodes[s as usize], label, nodes[d as usize]);
        }
        g
    })
}

/// Random *stratified* target tgds: rule `i`'s body ranges over the base
/// labels f/g/h plus the head labels of earlier rules (`t0 … t{i-1}`, so
/// cascades across rules arise), while its head writes only its own fresh
/// label `t{i}`. Stratification makes the set weakly acyclic (both modes
/// terminate) and confluent up to isomorphism (no rule's firing can
/// witness another rule's head, and within one rule distinct matches
/// place independent demands) — exactly the contract under which the
/// semi-naive engine must be a pure optimization. Cyclic sets, where the
/// restricted chase's very termination depends on firing order, are
/// covered separately by `non_terminating_set_hits_bound` in the unit
/// tests.
fn arb_tgds() -> impl Strategy<Value = Vec<TargetTgd>> {
    let body_shape = prop_oneof![
        Just("(x, B0, y)"),
        Just("(x, B0.B1, y)"),
        Just("(x, B0.B0*, y)"),
        Just("(x, B0+B1, y)"),
        Just("(x, B0, y), (y, B1, w)"),
        Just("(x, [B1], x), (x, B0, y)"),
    ];
    // Every shape's demand is a function of the match's frontier values
    // alone, and a firing can witness exactly its own demand — so the
    // fired set is order-independent and both modes are confluent up to
    // null renaming. (A shape like `(y, H, z), (x, H, z)` would *not*
    // qualify: the diagonal match x = y collapses the pair into a single
    // edge that subsumes later demands differently per firing order.)
    let head_shape = prop_oneof![
        Just(("(y, H, z)", true)),
        Just(("(y, H, x)", false)),
        Just(("(x, H, y)", false)),
        Just(("(y, H, z), (z, H, x)", true)),
        Just(("(y, H.H, z)", true)),
    ];
    proptest::collection::vec((body_shape, head_shape, 0u8..3, 0u8..3), 1..=4).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (b, (h, existential), b0, b1))| {
                // Base labels plus earlier head labels, picked per rule.
                let mut pool = vec!["f".to_owned(), "g".to_owned(), "h".to_owned()];
                pool.extend((0..i).map(|j| format!("t{j}")));
                let pick = |sel: u8| pool[sel as usize % pool.len()].clone();
                let body = b.replace("B0", &pick(b0)).replace("B1", &pick(b1));
                let head = h.replace('H', &format!("t{i}"));
                tgd(&body, if existential { &["z"] } else { &[] }, &head)
            })
            .collect()
    })
}

fn run(g: &Graph, tgds: &[TargetTgd], mode: TgdChaseMode) -> Result<Graph, GdxError> {
    chase_target_tgds(
        g,
        tgds,
        TgdChaseConfig {
            max_steps: 300,
            mode,
            ..TgdChaseConfig::default()
        },
    )
    .map(|out| out.graph)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The tentpole equivalence property: on random settings, the
    /// semi-naive chase output is isomorphic (`gdx_graph::hom`) to the
    /// naive round-robin chase output.
    #[test]
    fn semi_naive_is_isomorphic_to_naive(g in arb_graph(), tgds in arb_tgds()) {
        let semi = run(&g, &tgds, TgdChaseMode::SemiNaive);
        let naive = run(&g, &tgds, TgdChaseMode::Naive);
        match (semi, naive) {
            (Ok(gs), Ok(gn)) => {
                prop_assert!(
                    is_isomorphic(&gs, &gn),
                    "chase outputs diverged:\nsemi-naive:\n{gs}\nnaive:\n{gn}"
                );
            }
            (Err(GdxError::LimitExceeded(_)), Err(GdxError::LimitExceeded(_))) => {}
            (semi, naive) => {
                return Err(TestCaseError::fail(format!(
                    "modes disagree on termination: semi-naive {semi:?} vs naive {naive:?}"
                )));
            }
        }
    }
}

/// Regression: the per-rule delta caches must survive ≥3 firing rounds.
/// The engine chases a growing graph across three restarts (the solver's
/// fixpoint loop does exactly this); every body evaluation after the
/// first sweep must be answered from the warm per-rule delta states —
/// `full_evals` must stay frozen at one prime per rule.
#[test]
fn per_rule_caches_survive_three_firing_rounds() {
    let tgds = gdx_datagen::chain_target_tgds(3);
    let mut g = Graph::new();
    g.add_edge_consts("n0", "h", "hx");
    let mut engine = TgdChaseEngine::new(&tgds, TgdChaseConfig::default());

    let mut steps_seen = Vec::new();
    for round in 1..=3u32 {
        engine.run(&mut g).unwrap();
        steps_seen.push(engine.stats().steps);
        assert_eq!(
            engine.stats().full_evals,
            tgds.len(),
            "round {round}: each rule primes its cache exactly once, ever"
        );
        // Feed the next round: a fresh h-edge with a *fresh* target
        // re-triggers the whole chain (re-using hx would find the chain
        // already materialized there — correctly firing nothing).
        g.add_edge_consts(&format!("n{round}"), "h", &format!("hx{round}"));
    }
    // Every restart fired the whole 3-level chain for the new h-edge.
    assert_eq!(steps_seen, vec![3, 6, 9]);
    let stats: ChaseStats = engine.stats();
    assert!(
        stats.delta_evals > 0,
        "restarted rounds must be answered from warm delta states"
    );
}

/// Acceptance gate for the scaling claim, on a datagen instance: the
/// semi-naive chase must examine at least 2× fewer body-match rows than
/// the naive round-robin chase.
#[test]
fn semi_naive_halves_body_match_work_on_datagen_instances() {
    // A Flight/Hotel instance, s-t chased and instantiated, then chased
    // with a depth-6 chain of target tgds.
    let inst = gdx_datagen::flights_hotels(
        gdx_datagen::FlightsHotelsParams {
            flights: 60,
            cities: 12,
            hotels: 12,
            stays_per_flight: 2,
        },
        &mut gdx_datagen::rng(42),
    );
    let st = gdx_chase::chase_st(
        &inst,
        &gdx_mapping::Setting::example_2_2_egd(),
        gdx_chase::StChaseVariant::Oblivious,
    )
    .unwrap();
    let g = gdx_pattern::instantiate_shortest(&st.pattern).unwrap();
    let tgds = gdx_datagen::chain_target_tgds(6);

    let cfg_semi = TgdChaseConfig {
        max_steps: 100_000,
        mode: TgdChaseMode::SemiNaive,
        ..TgdChaseConfig::default()
    };
    let cfg_naive = TgdChaseConfig {
        max_steps: 100_000,
        mode: TgdChaseMode::Naive,
        ..TgdChaseConfig::default()
    };
    let semi = chase_target_tgds(&g, &tgds, cfg_semi).unwrap();
    let naive = chase_target_tgds(&g, &tgds, cfg_naive).unwrap();

    assert_eq!(semi.steps, naive.steps, "same firings either way");
    assert!(
        is_isomorphic(&semi.graph, &naive.graph),
        "modes must agree on the chased graph"
    );
    assert!(
        naive.stats.body_rows >= 2 * semi.stats.body_rows.max(1),
        "semi-naive must examine ≥2× fewer body rows: naive {} vs semi {}",
        naive.stats.body_rows,
        semi.stats.body_rows
    );
}
