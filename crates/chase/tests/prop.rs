//! Property-based tests for the chase engines on randomly generated
//! instances and patterns.

use gdx_chase::{chase_egds_on_pattern, chase_st, EgdChaseConfig, EgdChaseOutcome, StChaseVariant};
use gdx_common::Symbol;
use gdx_graph::Node;
use gdx_mapping::{Egd, Setting};
use gdx_pattern::{instantiate_shortest, GraphPattern};
use gdx_query::Cnre;
use gdx_relational::Instance;
use proptest::prelude::*;

/// Random Flight/Hotel instances for the paper's Example 2.2 setting.
fn arb_instance() -> impl Strategy<Value = Instance> {
    (
        proptest::collection::vec((0u8..6, 0u8..4, 0u8..4), 0..8),
        proptest::collection::vec((0u8..6, 0u8..3), 0..8),
    )
        .prop_map(|(flights, hotels)| {
            let setting = Setting::example_2_2_egd();
            let mut inst = Instance::new(setting.source.clone());
            for (id, src, dst) in flights {
                inst.insert_strs(
                    "Flight",
                    &[&format!("fl{id}"), &format!("c{src}"), &format!("c{dst}")],
                )
                .unwrap();
            }
            for (id, h) in hotels {
                inst.insert_strs("Hotel", &[&format!("fl{id}"), &format!("h{h}")])
                    .unwrap();
            }
            inst
        })
}

/// Random patterns over single-symbol edges f/h with constants and nulls.
fn arb_pattern() -> impl Strategy<Value = GraphPattern> {
    proptest::collection::vec((0u32..5, 0u8..2, 0u32..5), 1..8).prop_map(|edges| {
        let mut p = GraphPattern::new();
        let nodes: Vec<_> = (0..5)
            .map(|i| {
                if i < 2 {
                    p.add_node(Node::cst(&format!("k{i}")))
                } else {
                    p.add_node(Node::null(&format!("n{i}")))
                }
            })
            .collect();
        for (s, l, d) in edges {
            let label = ["f", "h"][l as usize];
            p.add_edge(
                nodes[s as usize],
                gdx_nre::Nre::label(label),
                nodes[d as usize],
            );
        }
        p
    })
}

fn hotel_egd() -> Egd {
    Egd {
        body: Cnre::parse("(x1, h, x3), (x2, h, x3)").unwrap(),
        lhs: Symbol::new("x1"),
        rhs: Symbol::new("x2"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The canonical instantiation of the s-t chase output satisfies the
    /// s-t tgds on every generated instance (universality, one half).
    #[test]
    fn st_chase_instantiation_satisfies_tgds(inst in arb_instance()) {
        let setting = Setting::example_2_2_egd();
        let st = chase_st(&inst, &setting, StChaseVariant::Oblivious).unwrap();
        let g = instantiate_shortest(&st.pattern).unwrap();
        prop_assert!(
            gdx_exchange::solution::st_tgds_satisfied(&inst, &setting, &g).unwrap()
        );
        // The restricted variant never fires more triggers.
        let res = chase_st(&inst, &setting, StChaseVariant::Restricted).unwrap();
        prop_assert!(res.fired <= st.fired);
        let g2 = instantiate_shortest(&res.pattern).unwrap();
        prop_assert!(
            gdx_exchange::solution::st_tgds_satisfied(&inst, &setting, &g2).unwrap()
        );
    }

    /// Batched and sequential egd chase agree on success/failure and final
    /// pattern size, and never grow the pattern.
    #[test]
    fn egd_chase_modes_agree(p in arb_pattern()) {
        let egds = [hotel_egd()];
        let batched =
            chase_egds_on_pattern(&p, &egds, EgdChaseConfig::default()).unwrap();
        let sequential = chase_egds_on_pattern(
            &p,
            &egds,
            EgdChaseConfig { batch_merges: false, ..EgdChaseConfig::default() },
        )
        .unwrap();
        prop_assert_eq!(batched.succeeded(), sequential.succeeded());
        if let (Some(a), Some(b)) = (batched.pattern(), sequential.pattern()) {
            prop_assert_eq!(a.node_count(), b.node_count());
            prop_assert_eq!(a.edge_count(), b.edge_count());
            prop_assert!(a.node_count() <= p.node_count());
        }
    }

    /// After a successful egd chase, no *certain* violation remains: the
    /// chase reached a genuine fixpoint.
    #[test]
    fn egd_chase_reaches_fixpoint(p in arb_pattern()) {
        let egds = [hotel_egd()];
        let cfg = EgdChaseConfig::default();
        if let EgdChaseOutcome::Success { pattern, .. } =
            chase_egds_on_pattern(&p, &egds, cfg).unwrap()
        {
            let mut cache = gdx_common::FxHashMap::default();
            let ms = gdx_chase::egd_pattern::certain_matches(
                &pattern, &egds[0].body, cfg, &mut cache,
            )
            .unwrap();
            for m in ms {
                prop_assert_eq!(
                    m[&egds[0].lhs], m[&egds[0].rhs],
                    "unresolved certain violation"
                );
            }
        }
    }

    /// The full pipeline on generated instances: whenever the solver
    /// produces a witness, the witness verifies; whenever the chase fails,
    /// the solver agrees there is no solution.
    #[test]
    fn solver_witnesses_verify(inst in arb_instance()) {
        use gdx_exchange::ExchangeSession;
        let setting = Setting::example_2_2_egd();
        let mut session = ExchangeSession::new(setting.clone(), inst.clone());
        let ex = session.solution_exists().unwrap();
        if let Some(g) = ex.witness() {
            prop_assert!(gdx_exchange::is_solution(&inst, &setting, g).unwrap());
        }
    }
}
