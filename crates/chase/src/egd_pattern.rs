//! The adapted chase of Section 5: egd steps on graph patterns.
//!
//! For each egd `ψ_Σ(x̄) → x₁ = x₂` and each *certain* match of the body in
//! the pattern:
//!
//! 1. both images constants → the chase **fails**;
//! 2. one constant, one labeled null → the null is **substituted** by the
//!    constant;
//! 3. two labeled nulls → one **replaces** the other.
//!
//! ## Certain matching
//!
//! A pattern edge carries a whole NRE, so deciding whether a body atom
//! `(x, s, y)` is matched by a pair of pattern nodes requires *entailment*:
//! the match must hold in **every** graph of `Rep_Σ(π)`. We use the sound
//! criterion from DESIGN.md §5: a sequence of pattern edges
//! `(u, r₁, ·) … (·, r_m, v)` (each traversable forward or, optionally,
//! backward with the reversed NRE) entails `(u, s, v)` when
//! `L(r₁·…·r_m) ⊆ L(s)` — decided by automata inclusion on test-free NREs.
//! Sequences are bounded by `path_bound`. NREs with nesting tests fall back
//! to single-edge syntactic equality (exact on the paper's SORE(·) egds,
//! which are test-free anyway).

use gdx_automata::included;
use gdx_common::{FxHashMap, FxHashSet, GdxError, Result, Symbol, Term, UnionFind};
use gdx_graph::Node;
use gdx_mapping::Egd;
use gdx_nre::{BinRel, Nre};
use gdx_obs::Obs;
use gdx_pattern::{GraphPattern, PNodeId};

/// Configuration of the egd-on-pattern chase.
#[derive(Debug, Clone, Copy)]
pub struct EgdChaseConfig {
    /// Maximum number of pattern edges a matching path may traverse.
    pub path_bound: usize,
    /// Allow traversing pattern edges backwards (with the reversed NRE).
    pub allow_reversed: bool,
    /// Merge every violation found in a round at once (via union-find)
    /// instead of one merge per re-evaluation. Same fixpoint, far fewer
    /// evaluation rounds on merge-heavy patterns; the one-at-a-time mode
    /// is kept as the B5 ablation baseline.
    pub batch_merges: bool,
    /// Hard cap on merge rounds (safety net; merges strictly shrink the
    /// pattern, so the chase terminates regardless).
    pub max_rounds: usize,
}

impl Default for EgdChaseConfig {
    fn default() -> EgdChaseConfig {
        EgdChaseConfig {
            path_bound: 2,
            allow_reversed: true,
            batch_merges: true,
            max_rounds: 10_000,
        }
    }
}

/// Result of the adapted chase.
#[derive(Debug, Clone)]
pub enum EgdChaseOutcome {
    /// The chase reached a fixpoint.
    Success {
        /// The chased pattern.
        pattern: GraphPattern,
        /// Number of node merges performed.
        merges: usize,
    },
    /// An egd forced two distinct constants equal — no solution exists.
    Failed {
        /// The two constants that were forced equal.
        constants: (Symbol, Symbol),
        /// Merges performed before the failure.
        merges: usize,
    },
}

impl EgdChaseOutcome {
    /// True for [`EgdChaseOutcome::Success`].
    pub fn succeeded(&self) -> bool {
        matches!(self, EgdChaseOutcome::Success { .. })
    }

    /// The pattern, when the chase succeeded.
    pub fn pattern(&self) -> Option<&GraphPattern> {
        match self {
            EgdChaseOutcome::Success { pattern, .. } => Some(pattern),
            EgdChaseOutcome::Failed { .. } => None,
        }
    }
}

/// Runs the adapted egd chase on `pattern` to fixpoint.
pub fn chase_egds_on_pattern(
    pattern: &GraphPattern,
    egds: &[Egd],
    cfg: EgdChaseConfig,
) -> Result<EgdChaseOutcome> {
    chase_egds_on_pattern_obs(pattern, egds, cfg, &Obs::disabled())
}

/// [`chase_egds_on_pattern`] with an observability sink: spans
/// `egd.run`, counts rounds and merges (`egd.rounds`, `egd.merges`) and
/// records per-round merge batches into the `egd.merges_per_round`
/// histogram. Recording never changes the chase outcome.
pub fn chase_egds_on_pattern_obs(
    pattern: &GraphPattern,
    egds: &[Egd],
    cfg: EgdChaseConfig,
    obs: &Obs,
) -> Result<EgdChaseOutcome> {
    let _span = obs.span_fields("egd.run", &[("egds", egds.len() as u64)]);
    let result = chase_egds_inner(pattern, egds, cfg, obs);
    if let Ok(outcome) = &result {
        let merges = match outcome {
            EgdChaseOutcome::Success { merges, .. } | EgdChaseOutcome::Failed { merges, .. } => {
                *merges
            }
        };
        obs.add("egd.merges", merges as u64);
    }
    result
}

fn chase_egds_inner(
    pattern: &GraphPattern,
    egds: &[Egd],
    cfg: EgdChaseConfig,
    obs: &Obs,
) -> Result<EgdChaseOutcome> {
    let mut pattern = pattern.clone();
    let mut merges = 0usize;
    let mut incl_cache: FxHashMap<(Vec<Nre>, Nre), bool> = FxHashMap::default();

    for _round in 0..cfg.max_rounds {
        obs.incr("egd.rounds");
        let merges_at_round_start = merges;
        // The step relations and entailment relations depend only on the
        // pattern (which is stable within a round), not on the egd under
        // consideration: build them once per round and share them across
        // every egd — and across duplicate NREs within one egd body.
        let mut index = EntailmentIndex::build(&pattern, cfg);
        if cfg.batch_merges {
            // Collect every violation in one pass, merge them all at once.
            let mut uf = UnionFind::new(pattern.node_count());
            let mut any = false;
            for egd in egds {
                let matches =
                    certain_matches_indexed(&pattern, &egd.body, &mut index, &mut incl_cache)?;
                for m in matches {
                    let (n1, n2) = (m[&egd.lhs], m[&egd.rhs]);
                    let (r1, r2) = (uf.find(n1), uf.find(n2));
                    if r1 == r2 {
                        continue;
                    }
                    let c1 = pattern.node(r1).is_const();
                    let c2 = pattern.node(r2).is_const();
                    match (c1, c2) {
                        (true, true) => {
                            return Ok(EgdChaseOutcome::Failed {
                                constants: (pattern.node(r1).name(), pattern.node(r2).name()),
                                merges,
                            })
                        }
                        (true, false) => {
                            uf.union_into(r1, r2);
                        }
                        _ => {
                            uf.union_into(r2, r1);
                        }
                    }
                    merges += 1;
                    any = true;
                }
            }
            obs.observe(
                "egd.merges_per_round",
                (merges - merges_at_round_start) as u64,
            );
            if !any {
                return Ok(EgdChaseOutcome::Success { pattern, merges });
            }
            pattern = pattern.quotient(|id| uf.find_const(id));
        } else {
            let mut changed = false;
            'egd_loop: for egd in egds {
                let matches =
                    certain_matches_indexed(&pattern, &egd.body, &mut index, &mut incl_cache)?;
                for m in matches {
                    let n1 = m[&egd.lhs];
                    let n2 = m[&egd.rhs];
                    if n1 == n2 {
                        continue;
                    }
                    let node1 = pattern.node(n1);
                    let node2 = pattern.node(n2);
                    match (node1.is_const(), node2.is_const()) {
                        (true, true) => {
                            return Ok(EgdChaseOutcome::Failed {
                                constants: (node1.name(), node2.name()),
                                merges,
                            })
                        }
                        (true, false) => {
                            pattern = pattern.quotient(|id| if id == n2 { n1 } else { id });
                        }
                        _ => {
                            pattern = pattern.quotient(|id| if id == n1 { n2 } else { id });
                        }
                    }
                    merges += 1;
                    changed = true;
                    // The pattern changed: node ids are stale. Recompute.
                    break 'egd_loop;
                }
            }
            obs.observe(
                "egd.merges_per_round",
                (merges - merges_at_round_start) as u64,
            );
            if !changed {
                return Ok(EgdChaseOutcome::Success { pattern, merges });
            }
        }
    }
    Err(GdxError::limit("egd chase exceeded max_rounds"))
}

/// Per-pattern-version evaluation index for certain matching: the
/// sequence relations (which depend on the pattern only) plus memoized
/// per-target entailment relations. Built once per chase round and shared
/// across every egd of the round; [`certain_matches`] builds a throwaway
/// one for one-shot callers.
#[derive(Debug)]
pub struct EntailmentIndex {
    /// Every NRE sequence up to the path bound with a non-empty composed
    /// syntactic relation over the pattern.
    sequences: Vec<(Vec<Nre>, BinRel)>,
    /// Entailment relations per target NRE, memoized across egd bodies.
    by_target: FxHashMap<Nre, BinRel>,
}

impl EntailmentIndex {
    /// Scans the pattern once: distinct edge NREs (with optional reversed
    /// variants) become step relations, then sequences up to
    /// `cfg.path_bound` are composed. Targets are *not* consulted here —
    /// the same index serves every egd of a round.
    pub fn build(pattern: &GraphPattern, cfg: EgdChaseConfig) -> EntailmentIndex {
        // Each "step kind" is (nre-as-matched, its syntactic relation).
        let mut step_rels: Vec<(Nre, BinRel)> = Vec::new();
        {
            let mut seen: FxHashSet<Nre> = FxHashSet::default();
            for (_, r, _) in pattern.edges() {
                if seen.insert(r.clone()) {
                    let mut fwd = BinRel::new();
                    for (s, r2, d) in pattern.edges() {
                        if r2 == r {
                            fwd.insert(*s, *d);
                        }
                    }
                    step_rels.push((r.clone(), fwd));
                }
            }
            if cfg.allow_reversed {
                let fwd_kinds: Vec<(Nre, BinRel)> = step_rels.clone();
                for (r, fwd) in fwd_kinds {
                    let rev_nre = r.reversed();
                    if seen.insert(rev_nre.clone()) {
                        let mut rev = BinRel::new();
                        for (u, v) in fwd.iter() {
                            rev.insert(v, u);
                        }
                        step_rels.push((rev_nre, rev));
                    }
                }
            }
        }

        // Enumerate sequences up to the path bound, composing as we go;
        // empty compositions cannot entail anything and are pruned.
        let mut sequences: Vec<(Vec<Nre>, BinRel)> = Vec::new();
        let mut frontier: Vec<(Vec<Nre>, Option<BinRel>)> = vec![(Vec::new(), None)];
        for _len in 1..=cfg.path_bound {
            let mut next: Vec<(Vec<Nre>, Option<BinRel>)> = Vec::new();
            for (seq, seq_rel) in &frontier {
                for (step_nre, step_rel) in &step_rels {
                    let mut seq2 = seq.clone();
                    seq2.push(step_nre.clone());
                    let rel2 = match seq_rel {
                        None => step_rel.clone(),
                        Some(r) => r.compose(step_rel),
                    };
                    if rel2.is_empty() {
                        continue;
                    }
                    sequences.push((seq2.clone(), rel2.clone()));
                    next.push((seq2, Some(rel2)));
                }
            }
            frontier = next;
        }
        EntailmentIndex {
            sequences,
            by_target: FxHashMap::default(),
        }
    }

    /// The pairs of pattern nodes certainly related by `target` in every
    /// represented graph (sound, path-bounded). Memoized per target.
    fn entailment_relation(
        &mut self,
        pattern: &GraphPattern,
        target: &Nre,
        incl_cache: &mut FxHashMap<(Vec<Nre>, Nre), bool>,
    ) -> Result<&BinRel> {
        if !self.by_target.contains_key(target) {
            let mut rel = BinRel::new();
            // Length 0: ε ∈ L(target) relates every node to itself.
            if target.nullable() {
                for id in pattern.node_ids() {
                    rel.insert(id, id);
                }
            }
            for (seq, seq_rel) in &self.sequences {
                let key = (seq.clone(), target.clone());
                let ok = match incl_cache.get(&key) {
                    Some(&b) => b,
                    None => {
                        let b = sequence_included(seq, target)?;
                        incl_cache.insert(key, b);
                        b
                    }
                };
                if ok {
                    for (u, v) in seq_rel.iter() {
                        rel.insert(u, v);
                    }
                }
            }
            self.by_target.insert(target.clone(), rel);
        }
        Ok(&self.by_target[target])
    }
}

/// All certain matches of a CNRE body against the pattern: assignments of
/// body variables to pattern nodes such that every atom is entailed.
/// One-shot wrapper around [`certain_matches_indexed`].
pub fn certain_matches(
    pattern: &GraphPattern,
    body: &gdx_query::Cnre,
    cfg: EgdChaseConfig,
    incl_cache: &mut FxHashMap<(Vec<Nre>, Nre), bool>,
) -> Result<Vec<FxHashMap<Symbol, PNodeId>>> {
    let mut index = EntailmentIndex::build(pattern, cfg);
    certain_matches_indexed(pattern, body, &mut index, incl_cache)
}

/// [`certain_matches`] against a prebuilt per-round [`EntailmentIndex`].
pub fn certain_matches_indexed(
    pattern: &GraphPattern,
    body: &gdx_query::Cnre,
    index: &mut EntailmentIndex,
    incl_cache: &mut FxHashMap<(Vec<Nre>, Nre), bool>,
) -> Result<Vec<FxHashMap<Symbol, PNodeId>>> {
    // Entailment relation per atom (shared per target via the index).
    for atom in &body.atoms {
        index.entailment_relation(pattern, &atom.nre, incl_cache)?;
    }
    let rels: Vec<&BinRel> = body
        .atoms
        .iter()
        .map(|a| &index.by_target[&a.nre])
        .collect();
    // Join.
    let mut out = Vec::new();
    let mut binding: FxHashMap<Symbol, PNodeId> = FxHashMap::default();
    join(pattern, body, &rels, 0, &mut binding, &mut out)?;
    Ok(out)
}

/// `L(r₁·…·r_m) ⊆ L(target)`? Test-free sequences go through the automata
/// library; anything with a nesting test falls back to single-step
/// syntactic equality (sound, incomplete).
fn sequence_included(seq: &[Nre], target: &Nre) -> Result<bool> {
    let all_test_free = target.is_test_free() && seq.iter().all(Nre::is_test_free);
    if all_test_free {
        let concat = Nre::concat_all(seq.iter().cloned());
        return included(&concat, target);
    }
    Ok(seq.len() == 1 && &seq[0] == target)
}

fn join(
    pattern: &GraphPattern,
    body: &gdx_query::Cnre,
    rels: &[&BinRel],
    depth: usize,
    binding: &mut FxHashMap<Symbol, PNodeId>,
    out: &mut Vec<FxHashMap<Symbol, PNodeId>>,
) -> Result<()> {
    if depth == body.atoms.len() {
        out.push(binding.clone());
        return Ok(());
    }
    let atom = &body.atoms[depth];
    let rel = rels[depth];
    let resolve = |t: &Term, binding: &FxHashMap<Symbol, PNodeId>| -> Result<Slot> {
        match t {
            Term::Const(c) => match pattern.node_id(Node::Const(*c)) {
                Some(id) => Ok(Slot::Fixed(id)),
                None => Ok(Slot::Missing),
            },
            Term::Var(v) => Ok(match binding.get(v) {
                Some(&id) => Slot::Fixed(id),
                None => Slot::Free(*v),
            }),
        }
    };
    match (
        resolve(&atom.left, binding)?,
        resolve(&atom.right, binding)?,
    ) {
        (Slot::Missing, _) | (_, Slot::Missing) => Ok(()),
        (Slot::Fixed(u), Slot::Fixed(v)) => {
            if rel.contains(u, v) {
                join(pattern, body, rels, depth + 1, binding, out)?;
            }
            Ok(())
        }
        (Slot::Fixed(u), Slot::Free(rv)) => {
            for &v in rel.image(u) {
                binding.insert(rv, v);
                join(pattern, body, rels, depth + 1, binding, out)?;
            }
            binding.remove(&rv);
            Ok(())
        }
        (Slot::Free(lv), Slot::Fixed(v)) => {
            for &u in rel.preimage(v) {
                binding.insert(lv, u);
                join(pattern, body, rels, depth + 1, binding, out)?;
            }
            binding.remove(&lv);
            Ok(())
        }
        (Slot::Free(lv), Slot::Free(rv)) => {
            if lv == rv {
                for (u, v) in rel.iter() {
                    if u == v {
                        binding.insert(lv, u);
                        join(pattern, body, rels, depth + 1, binding, out)?;
                        binding.remove(&lv);
                    }
                }
            } else {
                for (u, v) in rel.iter() {
                    binding.insert(lv, u);
                    binding.insert(rv, v);
                    join(pattern, body, rels, depth + 1, binding, out)?;
                    binding.remove(&rv);
                    binding.remove(&lv);
                }
            }
            Ok(())
        }
    }
}

enum Slot {
    Fixed(PNodeId),
    Free(Symbol),
    /// A constant absent from the pattern: the atom cannot match.
    Missing,
}

/// Convenience: run the full adapted chase (s-t phase then egd phase) of a
/// setting on an instance.
pub fn adapted_chase(
    instance: &gdx_relational::Instance,
    setting: &gdx_mapping::Setting,
    cfg: EgdChaseConfig,
) -> Result<EgdChaseOutcome> {
    let st = crate::st::chase_st(instance, setting, crate::st::StChaseVariant::Oblivious)?;
    let egds: Vec<Egd> = setting.egds().cloned().collect();
    chase_egds_on_pattern(&st.pattern, &egds, cfg)
}

/// Merge-closure helper shared with solvers: computes the quotient of a
/// pattern under an explicit set of node equalities, respecting the
/// constants-never-merge rule. Returns `None` when two distinct constants
/// would be identified.
pub fn quotient_with_equalities(
    pattern: &GraphPattern,
    equalities: &[(PNodeId, PNodeId)],
) -> Option<GraphPattern> {
    let mut uf = UnionFind::new(pattern.node_count());
    for &(a, b) in equalities {
        let (ra, rb) = (uf.find(a), uf.find(b));
        if ra == rb {
            continue;
        }
        let ca = pattern.node(ra).is_const();
        let cb = pattern.node(rb).is_const();
        match (ca, cb) {
            (true, true) => return None,
            (true, false) => {
                uf.union_into(ra, rb);
            }
            _ => {
                uf.union_into(rb, ra);
            }
        }
    }
    Some(pattern.quotient(|id| uf.find_const(id)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdx_mapping::Setting;
    use gdx_relational::Instance;

    fn fig3() -> GraphPattern {
        GraphPattern::parse(
            "(c1, f.f*, _N1); (_N1, f.f*, c2); (_N1, h, hy);
             (c1, f.f*, _N2); (_N2, f.f*, c2); (_N2, h, hx);
             (c3, f.f*, _N3); (_N3, f.f*, c2); (_N3, h, hx);",
        )
        .unwrap()
    }

    fn hotel_egd() -> Egd {
        Egd {
            body: gdx_query::Cnre::parse("(x1, h, x3), (x2, h, x3)").unwrap(),
            lhs: Symbol::new("x1"),
            rhs: Symbol::new("x2"),
        }
    }

    #[test]
    fn example_5_1_merges_hotel_nulls() {
        // Figure 5: N2 and N3 (both h-linked to hx) merge.
        let out =
            chase_egds_on_pattern(&fig3(), &[hotel_egd()], EgdChaseConfig::default()).unwrap();
        match out {
            EgdChaseOutcome::Success { pattern, merges } => {
                assert_eq!(merges, 1);
                assert_eq!(pattern.node_count(), 7);
                assert_eq!(pattern.edge_count(), 7);
                assert_eq!(pattern.null_count(), 2);
            }
            other => panic!("expected success, got {other:?}"),
        }
    }

    #[test]
    fn full_adapted_chase_example_2_2() {
        let out = adapted_chase(
            &Instance::example_2_2(),
            &Setting::example_2_2_egd(),
            EgdChaseConfig::default(),
        )
        .unwrap();
        let p = out.pattern().expect("chase succeeds");
        assert_eq!(p.node_count(), 7, "Figure 5 shape");
        assert_eq!(p.null_count(), 2);
    }

    #[test]
    fn figure_2_from_example_3_1() {
        // Single-symbol fragment: after the egd step, the Figure 2 graph.
        let out = adapted_chase(
            &Instance::example_2_2(),
            &Setting::example_3_1(),
            EgdChaseConfig::default(),
        )
        .unwrap();
        let p = out.pattern().expect("chase succeeds");
        let g = p.to_graph().unwrap();
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 7);
        let fig2 = gdx_graph::Graph::parse(
            "(c1, f, _N1); (_N1, h, hy); (_N1, f, c2);
             (c1, f, _N2); (_N2, h, hx); (_N2, f, c2);
             (c3, f, _N2);",
        )
        .unwrap();
        assert!(gdx_graph::is_isomorphic(&g, &fig2));
    }

    #[test]
    fn constant_constant_merge_fails() {
        // Two distinct constants sharing a hotel.
        let p = GraphPattern::parse("(u1, h, hx); (u2, h, hx);").unwrap();
        let out = chase_egds_on_pattern(&p, &[hotel_egd()], EgdChaseConfig::default()).unwrap();
        match out {
            EgdChaseOutcome::Failed { constants, .. } => {
                let names: FxHashSet<String> = [constants.0.to_string(), constants.1.to_string()]
                    .into_iter()
                    .collect();
                assert!(names.contains("u1") && names.contains("u2"));
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn constant_null_substitutes_constant() {
        let p = GraphPattern::parse("(u1, h, hx); (_N, h, hx); (_N, f, z);").unwrap();
        let out = chase_egds_on_pattern(&p, &[hotel_egd()], EgdChaseConfig::default()).unwrap();
        let pattern = out.pattern().expect("success");
        assert!(pattern.node_id(Node::null("N")).is_none(), "null replaced");
        // The f-edge now hangs off u1.
        let u1 = pattern.node_id(Node::cst("u1")).unwrap();
        let z = pattern.node_id(Node::cst("z")).unwrap();
        assert!(pattern.has_edge(u1, &Nre::label("f"), z));
    }

    #[test]
    fn example_5_2_chase_succeeds() {
        // a·(b*+c*)·a vs egd (x, a+b+c, y) → x=y: the path language is not
        // included in a+b+c, so no certain match exists; chase succeeds
        // without merges.
        let p = GraphPattern::parse("(c1, a.(b*+c*).a, c2);").unwrap();
        let egd = Egd {
            body: gdx_query::Cnre::parse("(x, a+b+c, y)").unwrap(),
            lhs: Symbol::new("x"),
            rhs: Symbol::new("y"),
        };
        let out = chase_egds_on_pattern(&p, &[egd], EgdChaseConfig::default()).unwrap();
        match out {
            EgdChaseOutcome::Success { merges, .. } => assert_eq!(merges, 0),
            other => panic!("expected success, got {other:?}"),
        }
    }

    #[test]
    fn entailment_through_two_edge_paths() {
        // (a, x1, _M); (_M, x2, b) with egd body (u, x1.x2, v): the length-2
        // path entails the SORE(·) concatenation.
        let p = GraphPattern::parse("(a, x1, _M); (_M, x2, b); (a2, x1.x2, b);").unwrap();
        let egd = Egd {
            body: gdx_query::Cnre::parse("(u, x1.x2, v)").unwrap(),
            lhs: Symbol::new("u"),
            rhs: Symbol::new("v"),
        };
        // u=a, v=b via the path; u=a2, v=b via the direct edge. Both a,a2
        // are constants matched with v=b… the egd equates u=v, i.e. a=b —
        // constants — failure.
        let out = chase_egds_on_pattern(&p, &[egd], EgdChaseConfig::default()).unwrap();
        assert!(!out.succeeded());
    }

    #[test]
    fn reversed_edges_can_match() {
        // Pattern edge (a, g, b); egd body (x, g-, y) should certainly
        // match (b, a) when reversal is on.
        let p = GraphPattern::parse("(a, g, _N);").unwrap();
        let egd = Egd {
            body: gdx_query::Cnre::parse("(x, g-, y)").unwrap(),
            lhs: Symbol::new("x"),
            rhs: Symbol::new("y"),
        };
        let on = chase_egds_on_pattern(&p, std::slice::from_ref(&egd), EgdChaseConfig::default())
            .unwrap();
        match on {
            EgdChaseOutcome::Success { pattern, merges } => {
                assert_eq!(merges, 1, "N merged into a");
                assert_eq!(pattern.node_count(), 1);
            }
            other => panic!("{other:?}"),
        }
        let off = chase_egds_on_pattern(
            &p,
            &[egd],
            EgdChaseConfig {
                allow_reversed: false,
                ..EgdChaseConfig::default()
            },
        )
        .unwrap();
        match off {
            EgdChaseOutcome::Success { merges, .. } => assert_eq!(merges, 0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn quotient_with_equalities_respects_constants() {
        let p = GraphPattern::parse("(a, f, _N1); (b, f, _N2);").unwrap();
        let a = p.node_id(Node::cst("a")).unwrap();
        let b = p.node_id(Node::cst("b")).unwrap();
        let n1 = p.node_id(Node::null("N1")).unwrap();
        let n2 = p.node_id(Node::null("N2")).unwrap();
        assert!(quotient_with_equalities(&p, &[(a, b)]).is_none());
        let q = quotient_with_equalities(&p, &[(n1, n2)]).unwrap();
        assert_eq!(q.node_count(), 3);
        let q2 = quotient_with_equalities(&p, &[(n1, a), (n1, n2)]).unwrap();
        assert_eq!(q2.node_count(), 2, "both nulls fold into a");
        assert!(quotient_with_equalities(&p, &[(n1, a), (n1, b)]).is_none());
    }

    #[test]
    fn batched_and_sequential_modes_agree() {
        let seq_cfg = EgdChaseConfig {
            batch_merges: false,
            ..EgdChaseConfig::default()
        };
        for (pattern, egds) in [
            (fig3(), vec![hotel_egd()]),
            (
                GraphPattern::parse("(u1, h, hx); (_N, h, hx); (_N, f, z);").unwrap(),
                vec![hotel_egd()],
            ),
            (
                GraphPattern::parse("(u1, h, hx); (u2, h, hx);").unwrap(),
                vec![hotel_egd()],
            ),
        ] {
            let a = chase_egds_on_pattern(&pattern, &egds, EgdChaseConfig::default()).unwrap();
            let b = chase_egds_on_pattern(&pattern, &egds, seq_cfg).unwrap();
            assert_eq!(a.succeeded(), b.succeeded());
            if let (Some(pa), Some(pb)) = (a.pattern(), b.pattern()) {
                assert_eq!(pa.node_count(), pb.node_count());
                assert_eq!(pa.edge_count(), pb.edge_count());
            }
        }
    }

    #[test]
    fn nullable_target_matches_identity() {
        let p = GraphPattern::parse("(a, f, b);").unwrap();
        let egd = Egd {
            body: gdx_query::Cnre::parse("(x, f*, x)").unwrap(),
            lhs: Symbol::new("x"),
            rhs: Symbol::new("x"),
        };
        // Trivial egd x = x would be rejected by validation, but
        // certain_matches itself must handle identity entailment.
        let mut cache = FxHashMap::default();
        let ms = certain_matches(&p, &egd.body, EgdChaseConfig::default(), &mut cache).unwrap();
        assert_eq!(ms.len(), 2, "every node matches (x, f*, x)");
    }
}
