//! The source-to-target chase: `I → π`.
//!
//! For every s-t tgd `φ_R(x̄) → ∃ȳ ψ_Σ(x̄, ȳ)` and every satisfying
//! assignment `μ` of `φ_R` over the instance (a *trigger*), the head is
//! instantiated into the pattern: frontier variables become the constants
//! `μ(x̄)`, existential variables become fresh labeled nulls (per trigger),
//! and each head atom `(t, r, t')` becomes a pattern edge with the NRE `r`.
//!
//! Two variants:
//!
//! * **oblivious** — every trigger fires (what \[5\]'s universal
//!   representative construction does, and what Example 3.2 shows);
//! * **restricted** — a trigger is skipped when the head is already
//!   satisfied *syntactically* in the pattern (same-NRE edges under some
//!   assignment of the existential variables). An ablation axis (B5).

use gdx_common::{FxHashMap, GdxError, Result, Symbol, Term};
use gdx_graph::{Node, NullFactory};
use gdx_mapping::{Setting, SourceToTargetTgd};
use gdx_pattern::{GraphPattern, PNodeId};
use gdx_relational::{evaluate, Instance};

/// Which chase variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StChaseVariant {
    /// Fire every trigger.
    #[default]
    Oblivious,
    /// Skip triggers whose head is already (syntactically) satisfied.
    Restricted,
}

/// Output of the s-t chase.
#[derive(Debug, Clone)]
pub struct StChaseResult {
    /// The chased pattern (the universal representative when `M_t = ∅`).
    pub pattern: GraphPattern,
    /// Number of triggers found.
    pub triggers: usize,
    /// Number of triggers actually fired.
    pub fired: usize,
}

/// Runs the s-t chase of `setting` on `instance`.
///
/// ```
/// use gdx_chase::{chase_st, StChaseVariant};
/// use gdx_mapping::Setting;
/// use gdx_relational::Instance;
/// let setting = Setting::example_2_2_egd();
/// let out = chase_st(&Instance::example_2_2(), &setting, StChaseVariant::Oblivious)
///     .unwrap();
/// assert_eq!(out.pattern.null_count(), 3); // N1, N2, N3 of Figure 3
/// ```
pub fn chase_st(
    instance: &Instance,
    setting: &Setting,
    variant: StChaseVariant,
) -> Result<StChaseResult> {
    // One null factory per chase run: null names are deterministic per
    // (instance, setting) regardless of what else ran in the process.
    chase_st_with_nulls(instance, setting, variant, NullFactory::new())
}

/// [`chase_st`] with a caller-supplied null factory — sessions use this to
/// seed fresh-null names ([`NullFactory::starting_at`]) so several chases
/// in one namespace get disjoint, reproducible null ranges.
pub fn chase_st_with_nulls(
    instance: &Instance,
    setting: &Setting,
    variant: StChaseVariant,
    mut nulls: NullFactory,
) -> Result<StChaseResult> {
    setting.validate()?;
    let mut pattern = GraphPattern::new();
    let mut triggers = 0;
    let mut fired = 0;
    for tgd in &setting.st_tgds {
        let bindings = evaluate(instance, &tgd.body)?;
        for row in bindings.iter_maps() {
            triggers += 1;
            if variant == StChaseVariant::Restricted && head_satisfied(&pattern, tgd, &row) {
                continue;
            }
            fire(&mut pattern, tgd, &row, &mut nulls)?;
            fired += 1;
        }
    }
    Ok(StChaseResult {
        pattern,
        triggers,
        fired,
    })
}

/// Instantiates the head of `tgd` under the body match `row`.
fn fire(
    pattern: &mut GraphPattern,
    tgd: &SourceToTargetTgd,
    row: &FxHashMap<Symbol, Symbol>,
    factory: &mut NullFactory,
) -> Result<()> {
    // Fresh null per existential variable, shared across the head's atoms
    // of this trigger.
    let mut nulls: FxHashMap<Symbol, PNodeId> = FxHashMap::default();
    for &y in &tgd.existential {
        let node = factory.fresh_where(|n| pattern.node_id(n).is_some());
        nulls.insert(y, pattern.add_node(node));
    }
    let resolve = |pattern: &mut GraphPattern, t: &Term| -> Result<PNodeId> {
        match t {
            Term::Const(c) => Ok(pattern.add_node(Node::Const(*c))),
            Term::Var(v) => {
                if let Some(&id) = nulls.get(v) {
                    Ok(id)
                } else if let Some(&c) = row.get(v) {
                    Ok(pattern.add_node(Node::Const(c)))
                } else {
                    Err(GdxError::schema(format!("unbound head variable {v}")))
                }
            }
        }
    };
    for atom in &tgd.head.atoms {
        let s = resolve(pattern, &atom.left)?;
        let d = resolve(pattern, &atom.right)?;
        pattern.add_edge(s, atom.nre.clone(), d);
    }
    Ok(())
}

/// Syntactic satisfaction check for the restricted variant: does some
/// assignment of the existential variables to pattern nodes make every
/// head atom an existing pattern edge with the *identical* NRE?
fn head_satisfied(
    pattern: &GraphPattern,
    tgd: &SourceToTargetTgd,
    row: &FxHashMap<Symbol, Symbol>,
) -> bool {
    let ex: Vec<Symbol> = tgd.existential.clone();
    let mut assign: FxHashMap<Symbol, PNodeId> = FxHashMap::default();
    satisfied_rec(pattern, tgd, row, &ex, 0, &mut assign)
}

fn satisfied_rec(
    pattern: &GraphPattern,
    tgd: &SourceToTargetTgd,
    row: &FxHashMap<Symbol, Symbol>,
    ex: &[Symbol],
    depth: usize,
    assign: &mut FxHashMap<Symbol, PNodeId>,
) -> bool {
    let resolve = |t: &Term, assign: &FxHashMap<Symbol, PNodeId>| -> Option<PNodeId> {
        match t {
            Term::Const(c) => pattern.node_id(Node::Const(*c)),
            Term::Var(v) => assign
                .get(v)
                .copied()
                .or_else(|| row.get(v).and_then(|&c| pattern.node_id(Node::Const(c)))),
        }
    };
    if depth == ex.len() {
        return tgd.head.atoms.iter().all(|atom| {
            match (resolve(&atom.left, assign), resolve(&atom.right, assign)) {
                (Some(s), Some(d)) => pattern.has_edge(s, &atom.nre, d),
                _ => false,
            }
        });
    }
    for cand in pattern.node_ids() {
        assign.insert(ex[depth], cand);
        if satisfied_rec(pattern, tgd, row, ex, depth + 1, assign) {
            return true;
        }
        assign.remove(&ex[depth]);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdx_nre::parse::parse_nre;

    #[test]
    fn example_3_2_pattern_shape() {
        // Figure 3: 3 triggers, each firing 3 edges with a fresh null.
        let out = chase_st(
            &Instance::example_2_2(),
            &Setting::example_2_2_egd(),
            StChaseVariant::Oblivious,
        )
        .unwrap();
        let p = &out.pattern;
        assert_eq!(out.triggers, 3);
        assert_eq!(out.fired, 3);
        assert_eq!(p.node_count(), 8, "c1,c2,c3,hx,hy + 3 nulls");
        assert_eq!(p.edge_count(), 9);
        assert_eq!(p.null_count(), 3);
        // Every f.f* edge; h edges to hx twice, hy once.
        let ffstar = parse_nre("f.f*").unwrap();
        let star_edges = p.edges().iter().filter(|(_, r, _)| r == &ffstar).count();
        assert_eq!(star_edges, 6);
        let hx = p.node_id(Node::cst("hx")).unwrap();
        let h = parse_nre("h").unwrap();
        let to_hx = p
            .edges()
            .iter()
            .filter(|(_, r, d)| r == &h && *d == hx)
            .count();
        assert_eq!(to_hx, 2);
    }

    #[test]
    fn relational_fragment_chase_pre_egd() {
        // Example 3.1: single-symbol heads — the pattern is a plain graph.
        // The s-t phase alone produces 3 nulls; Figure 2 (7 nodes) appears
        // after the egd step merges the two hx-hotel nulls — covered by
        // the egd_pattern tests.
        let out = chase_st(
            &Instance::example_2_2(),
            &Setting::example_3_1(),
            StChaseVariant::Oblivious,
        )
        .unwrap();
        let g = out.pattern.to_graph().unwrap();
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 9);
    }

    #[test]
    fn restricted_skips_satisfied_triggers() {
        // Two identical facts produce one trigger each for a tgd whose head
        // does not depend on the differing column.
        let schema = gdx_relational::Schema::from_relations([("R", 2)]).unwrap();
        let inst = Instance::parse(schema, "R(a, b); R(a, c);").unwrap();
        let setting = gdx_mapping::dsl::parse_setting(
            "source { R/2 }
             target { e }
             sttgd R(x, y) -> exists z : (x, e, z);",
        )
        .unwrap();
        let obl = chase_st(&inst, &setting, StChaseVariant::Oblivious).unwrap();
        assert_eq!(obl.fired, 2);
        assert_eq!(obl.pattern.null_count(), 2);
        let res = chase_st(&inst, &setting, StChaseVariant::Restricted).unwrap();
        assert_eq!(res.fired, 1, "second trigger already satisfied");
        assert_eq!(res.pattern.null_count(), 1);
    }

    #[test]
    fn constants_in_head() {
        let schema = gdx_relational::Schema::from_relations([("R", 1)]).unwrap();
        let inst = Instance::parse(schema, "R(a);").unwrap();
        let setting = gdx_mapping::dsl::parse_setting(
            "source { R/1 }
             target { e }
             sttgd R(x) -> (x, e, \"sink\");",
        )
        .unwrap();
        let out = chase_st(&inst, &setting, StChaseVariant::Oblivious).unwrap();
        assert!(out.pattern.node_id(Node::cst("sink")).is_some());
        assert_eq!(out.pattern.edge_count(), 1);
    }

    #[test]
    fn empty_instance_empty_pattern() {
        let schema = gdx_relational::Schema::from_relations([("Flight", 3), ("Hotel", 2)]).unwrap();
        let inst = Instance::new(schema);
        let out = chase_st(
            &inst,
            &Setting::example_2_2_egd(),
            StChaseVariant::Oblivious,
        )
        .unwrap();
        assert_eq!(out.pattern.node_count(), 0);
        assert_eq!(out.triggers, 0);
    }

    #[test]
    fn theorem_4_1_chase_shape() {
        // The reduction's single trigger: (c1, a, c2) plus n self-loop
        // union edges on c1.
        let setting = gdx_mapping::dsl::parse_setting(
            "source { R1/1; R2/1 }
             target { a; t1; f1; t2; f2 }
             sttgd R1(x), R2(y) -> (x, a, y), (x, t1+f1, x), (x, t2+f2, x);",
        )
        .unwrap();
        let schema = setting.source.clone();
        let inst = Instance::parse(schema, "R1(c1); R2(c2);").unwrap();
        let out = chase_st(&inst, &setting, StChaseVariant::Oblivious).unwrap();
        assert_eq!(out.pattern.node_count(), 2);
        assert_eq!(out.pattern.edge_count(), 3);
        assert_eq!(out.pattern.null_count(), 0);
    }
}
