//! Weak acyclicity: the classical chase-termination criterion
//! (Fagin–Kolaitis–Miller–Popa), applied to the single-symbol fragment of
//! target tgds.
//!
//! In the graph setting, a *position* is `(label, end)` with `end ∈ {src,
//! dst}` — the two argument positions of the binary relation a label
//! denotes. The dependency graph has
//!
//! * a **regular edge** `p → q` when some tgd has a universal variable at
//!   body position `p` that also occurs at head position `q`;
//! * a **special edge** `p ⇒ q` when some tgd has a universal variable at
//!   body position `p` and an *existential* variable at head position `q`.
//!
//! The tgd set is weakly acyclic iff no cycle passes through a special
//! edge; then the chase terminates on every input. Tgds whose atoms are
//! not single symbols are rejected with `Unsupported` (the criterion is
//! defined on relational atoms).

use gdx_common::{FxHashMap, FxHashSet, GdxError, Result, Symbol};
use gdx_mapping::TargetTgd;
use gdx_nre::Nre;

/// A position in the dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Position {
    label: Symbol,
    /// `false` = source end, `true` = destination end.
    dst: bool,
}

/// Decides weak acyclicity of a set of single-symbol target tgds.
pub fn is_weakly_acyclic(tgds: &[TargetTgd]) -> Result<bool> {
    // Collect positions and edges.
    let mut nodes: FxHashSet<Position> = FxHashSet::default();
    // (from, to, special)
    let mut edges: Vec<(Position, Position, bool)> = Vec::new();

    for tgd in tgds {
        // Position map of universal (body) variables.
        let mut body_positions: FxHashMap<Symbol, Vec<Position>> = FxHashMap::default();
        for atom in &tgd.body.atoms {
            let label = single_symbol(&atom.nre)?;
            for (term, dst) in [(&atom.left, false), (&atom.right, true)] {
                let p = Position { label, dst };
                nodes.insert(p);
                if let Some(v) = term.as_var() {
                    body_positions.entry(v).or_default().push(p);
                }
            }
        }
        let existential: FxHashSet<Symbol> = tgd.existential.iter().copied().collect();
        for atom in &tgd.head.atoms {
            let label = single_symbol(&atom.nre)?;
            for (term, dst) in [(&atom.left, false), (&atom.right, true)] {
                let q = Position { label, dst };
                nodes.insert(q);
                let Some(v) = term.as_var() else { continue };
                if existential.contains(&v) {
                    // Special edge from every position of every universal
                    // variable occurring in the head.
                    for hv in tgd.head.variables() {
                        if existential.contains(&hv) {
                            continue;
                        }
                        for &p in body_positions.get(&hv).into_iter().flatten() {
                            edges.push((p, q, true));
                        }
                    }
                } else {
                    for &p in body_positions.get(&v).into_iter().flatten() {
                        edges.push((p, q, false));
                    }
                }
            }
        }
    }

    // Weak acyclicity fails iff some special edge lies on a cycle, i.e.
    // both its endpoints are in the same strongly connected component.
    let mut node_list: Vec<Position> = nodes.iter().copied().collect();
    node_list.sort_unstable();
    let index: FxHashMap<Position, usize> =
        node_list.iter().enumerate().map(|(i, &p)| (p, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); node_list.len()];
    for &(a, b, _) in &edges {
        adj[index[&a]].push(index[&b]);
    }
    let scc = tarjan_scc(&adj);
    for &(a, b, special) in &edges {
        if special && scc[index[&a]] == scc[index[&b]] {
            return Ok(false);
        }
    }
    Ok(true)
}

fn single_symbol(r: &Nre) -> Result<Symbol> {
    match r {
        Nre::Label(a) => Ok(*a),
        other => Err(GdxError::unsupported(format!(
            "weak acyclicity is defined on single-symbol tgds, found `{other}`"
        ))),
    }
}

/// Iterative Tarjan SCC; returns the component id per node.
fn tarjan_scc(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut next_comp = 0usize;

    // Explicit DFS stack: (node, child-iterator position).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdx_query::Cnre;

    fn tgd(body: &str, existential: &[&str], head: &str) -> TargetTgd {
        TargetTgd {
            body: Cnre::parse(body).unwrap(),
            existential: existential.iter().map(|s| Symbol::new(s)).collect(),
            head: Cnre::parse(head).unwrap(),
        }
    }

    #[test]
    fn acyclic_chain_is_weakly_acyclic() {
        let ts = [
            tgd("(x, f, y)", &["z"], "(y, g, z)"),
            tgd("(x, g, y)", &["w"], "(y, h0, w)"),
        ];
        assert!(is_weakly_acyclic(&ts).unwrap());
    }

    #[test]
    fn self_feeding_tgd_is_not() {
        // (x, f, y) → ∃z (y, f, z): special edge inside the f-cycle.
        let ts = [tgd("(x, f, y)", &["z"], "(y, f, z)")];
        assert!(!is_weakly_acyclic(&ts).unwrap());
    }

    #[test]
    fn two_step_cycle_detected() {
        let ts = [
            tgd("(x, f, y)", &["z"], "(y, g, z)"),
            tgd("(x, g, y)", &["w"], "(y, f, w)"),
        ];
        assert!(!is_weakly_acyclic(&ts).unwrap());
    }

    #[test]
    fn copy_only_tgds_are_acyclic() {
        // No existentials at all: only regular edges, cycles are harmless.
        let ts = [
            tgd("(x, f, y)", &[], "(y, f, x)"),
            tgd("(x, f, y)", &[], "(x, g, y)"),
        ];
        assert!(is_weakly_acyclic(&ts).unwrap());
    }

    #[test]
    fn non_single_symbol_rejected() {
        let ts = [tgd("(x, f.f, y)", &["z"], "(y, f, z)")];
        assert!(is_weakly_acyclic(&ts).is_err());
    }

    #[test]
    fn chase_agrees_with_criterion() {
        use crate::tgd::{chase_target_tgds, TgdChaseConfig};
        let g = gdx_graph::Graph::parse("(a, f, b);").unwrap();
        let good = [
            tgd("(x, f, y)", &["z"], "(y, g, z)"),
            tgd("(x, g, y)", &["w"], "(y, h0, w)"),
        ];
        assert!(is_weakly_acyclic(&good).unwrap());
        assert!(chase_target_tgds(&g, &good, TgdChaseConfig::default()).is_ok());

        let bad = [tgd("(x, f, y)", &["z"], "(y, f, z)")];
        assert!(!is_weakly_acyclic(&bad).unwrap());
        assert!(chase_target_tgds(
            &g,
            &bad,
            TgdChaseConfig {
                max_steps: 64,
                ..TgdChaseConfig::default()
            }
        )
        .is_err());
    }
}
