//! Bounded restricted chase for target tgds on concrete graphs.
//!
//! A target tgd `φ_Σ(x̄) → ∃ȳ ψ_Σ(x̄, ȳ)` fires on a body match whose head
//! has no witness; firing materializes the head atoms (shortest witness
//! paths, fresh nulls for `ȳ`). The chase may not terminate in general —
//! callers either verify weak acyclicity first
//! ([`crate::weak_acyclicity`]) or rely on the step bound.
//!
//! # Worklist semantics (semi-naive mode, the default)
//!
//! The engine keeps one persistent [`SemiNaiveState`] per rule (plus an
//! [`IncrementalCache`] for its head) and drives a **worklist of dirty
//! rules** instead of round-robin full scans:
//!
//! 1. every rule starts dirty; popping a rule asks its body state for
//!    [`delta_matches`] — only the body matches that did not exist the
//!    last time this rule was examined (the first call returns all);
//! 2. each new match is head-checked against the *current* graph (the
//!    incremental head cache advances by graph deltas) and fired when
//!    unwitnessed. Firing records the graph epoch around it, so the edges
//!    it produced are known exactly;
//! 3. after a rule's turn, every rule whose body mentions one of the
//!    produced edge labels — or whose body has a nullable atom, when
//!    nodes appeared — is re-marked dirty. Rules never re-examine old
//!    matches: graphs only grow during the tgd chase and heads are
//!    positive, so a witnessed head stays witnessed.
//!
//! The engine is **restartable**: [`TgdChaseEngine::run`] may be called
//! again after other actors (sameAs saturation, the solver's repair loop)
//! mutated the same graph — the per-rule caches survive and only the
//! foreign deltas are re-examined. Replacing the graph value entirely
//! (clone, quotient) is detected via [`Graph::id`] and resets the caches.
//!
//! Naive round-robin evaluation ([`TgdChaseMode::Naive`]) is kept as the
//! reference oracle: the equivalence property test in `tests/` asserts
//! both modes produce homomorphically equivalent results, and the
//! [`ChaseStats`] counters let benches compare evaluation effort.
//!
//! [`SemiNaiveState`]: gdx_query::SemiNaiveState
//! [`delta_matches`]: gdx_query::SemiNaiveState::delta_matches
//! [`IncrementalCache`]: gdx_nre::IncrementalCache

use gdx_common::{FxHashMap, FxHashSet, GdxError, Result, Symbol, Term};
use gdx_graph::{Graph, GraphId, Node, NodeId, NullFactory};
use gdx_mapping::TargetTgd;
use gdx_nre::eval::EvalCache;
use gdx_nre::witness;
use gdx_nre::IncrementalCache;
use gdx_obs::Obs;
use gdx_query::{
    evaluate_seeded_incremental_exists, evaluate_with_scratch, PlannerMode, PreparedQuery,
    SemiNaiveState,
};
use gdx_runtime::{Runtime, Threads};

/// Body-evaluation strategy of the target-tgd chase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TgdChaseMode {
    /// Delta-driven worklist chase with persistent per-rule caches.
    #[default]
    SemiNaive,
    /// Reference oracle: round-robin, cold full body evaluation per rule
    /// per round (the pre-epoch behaviour).
    Naive,
}

/// Configuration of the target-tgd chase.
#[derive(Debug, Clone, Copy)]
pub struct TgdChaseConfig {
    /// Maximum number of firings before giving up. The budget is
    /// inclusive: a chase that reaches fixpoint in exactly `max_steps`
    /// firings succeeds; only a firing *beyond* the budget trips
    /// [`GdxError::LimitExceeded`]. At `0`, any needed firing trips it,
    /// while an already-satisfied graph still chases to a clean no-op.
    pub max_steps: usize,
    /// Body-evaluation strategy.
    pub mode: TgdChaseMode,
    /// Worker pool for the semi-naive engine's delta joins and the
    /// speculative head pre-filter. The chase result — graph, firing
    /// order, fresh-null names, [`ChaseStats`] — is byte-identical at any
    /// worker count; threads only change wall-clock. Naive mode (the
    /// oracle) ignores this and stays strictly sequential.
    pub threads: Threads,
}

impl Default for TgdChaseConfig {
    fn default() -> TgdChaseConfig {
        TgdChaseConfig {
            max_steps: 10_000,
            mode: TgdChaseMode::default(),
            threads: Threads::Auto,
        }
    }
}

/// Evaluation-effort counters, for regression tests and the scaling bench
/// (naive vs semi-naive). `PartialEq` so determinism tests can pin the
/// N-worker counters against the 1-worker run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// Tgd firings.
    pub steps: usize,
    /// Rule turns taken (worklist pops / naive rule visits).
    pub turns: usize,
    /// Body match rows examined across all turns. Naive mode re-examines
    /// every match each round; semi-naive examines each match once.
    pub body_rows: usize,
    /// Body evaluations that ran from a cold cache.
    pub full_evals: usize,
    /// Body evaluations answered from a warm per-rule delta state.
    pub delta_evals: usize,
    /// Fresh nulls invented by firings (one per existential variable per
    /// firing).
    pub null_births: usize,
}

impl ChaseStats {
    /// Component-wise difference against an earlier snapshot of the same
    /// cumulative counters (saturating, so a reset engine yields zeros
    /// rather than wrapping).
    pub fn delta_since(&self, earlier: &ChaseStats) -> ChaseStats {
        ChaseStats {
            steps: self.steps.saturating_sub(earlier.steps),
            turns: self.turns.saturating_sub(earlier.turns),
            body_rows: self.body_rows.saturating_sub(earlier.body_rows),
            full_evals: self.full_evals.saturating_sub(earlier.full_evals),
            delta_evals: self.delta_evals.saturating_sub(earlier.delta_evals),
            null_births: self.null_births.saturating_sub(earlier.null_births),
        }
    }

    /// Bridge into the shared registry under the `chase.*` namespace.
    /// Call with a *delta* (see [`ChaseStats::delta_since`]) — registry
    /// counters are cumulative, so recording a cumulative snapshot twice
    /// would double-count.
    pub fn record_into(&self, obs: &Obs) {
        if !obs.is_enabled() {
            return;
        }
        obs.add("chase.firings", self.steps as u64);
        obs.add("chase.turns", self.turns as u64);
        obs.add("chase.body_rows", self.body_rows as u64);
        obs.add("chase.full_evals", self.full_evals as u64);
        obs.add("chase.delta_evals", self.delta_evals as u64);
        obs.add("chase.null_births", self.null_births as u64);
    }

    /// Stable JSON rendering (fixed field order, no dependencies).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"steps\": {}, \"turns\": {}, \"body_rows\": {}, \"full_evals\": {}, \"delta_evals\": {}, \"null_births\": {}}}",
            self.steps, self.turns, self.body_rows, self.full_evals, self.delta_evals, self.null_births
        )
    }
}

/// Output of the target-tgd chase.
#[derive(Debug, Clone)]
pub struct TgdChaseResult {
    /// The chased graph.
    pub graph: Graph,
    /// Number of tgd firings.
    pub steps: usize,
    /// Evaluation-effort counters.
    pub stats: ChaseStats,
}

/// Per-rule persistent state of the semi-naive engine.
#[derive(Debug)]
struct RuleState {
    tgd: TargetTgd,
    /// Delta-driven body matcher (cache + per-atom marks).
    body: SemiNaiveState,
    /// Incremental relations for head-satisfaction checks.
    head: IncrementalCache,
    /// Body and head compiled once per engine (naive mode evaluates from
    /// cold caches every round; the automata need not be rebuilt with
    /// them).
    body_q: PreparedQuery,
    head_q: PreparedQuery,
    /// Alphabet symbols of the body NREs: an edge with a foreign label
    /// cannot create a body match.
    symbols: FxHashSet<Symbol>,
    /// Whether some body atom is nullable: only then can a bare node
    /// addition (identity pair) create a body match.
    nullable_atom: bool,
    dirty: bool,
    /// Whether the body state has evaluated at least once (distinguishes
    /// full prime from delta evaluation in the stats).
    primed: bool,
}

impl RuleState {
    fn new(tgd: &TargetTgd) -> RuleState {
        let symbols = tgd.body.symbols();
        let nullable_atom = tgd.body.atoms.iter().any(|a| a.nre.nullable());
        RuleState {
            tgd: tgd.clone(),
            body: SemiNaiveState::new(),
            head: IncrementalCache::new(),
            body_q: PreparedQuery::new(tgd.body.clone()),
            head_q: PreparedQuery::new(tgd.head.clone()),
            symbols,
            nullable_atom,
            dirty: true,
            primed: false,
        }
    }
}

/// A restartable, semi-naive target-tgd chase engine.
///
/// Owns the per-rule caches; [`TgdChaseEngine::run`] chases a graph
/// *in place* to a fixpoint and may be called repeatedly as the graph
/// grows — each call re-examines only what changed since the last one.
#[derive(Debug)]
pub struct TgdChaseEngine {
    cfg: TgdChaseConfig,
    /// Worker pool resolved once from `cfg.threads`.
    runtime: Runtime,
    rules: Vec<RuleState>,
    nulls: NullFactory,
    /// The graph value the caches are valid for.
    graph: Option<GraphId>,
    /// Firings charged against `cfg.max_steps`, reset per graph value.
    steps_in_graph: usize,
    stats: ChaseStats,
    /// Observability sink (disabled by default; see
    /// [`TgdChaseEngine::set_obs`]).
    obs: Obs,
}

impl TgdChaseEngine {
    /// An engine for the given rules (rules are fixed per engine).
    pub fn new(tgds: &[TargetTgd], cfg: TgdChaseConfig) -> TgdChaseEngine {
        TgdChaseEngine {
            cfg,
            runtime: Runtime::new(cfg.threads),
            rules: tgds.iter().map(RuleState::new).collect(),
            nulls: NullFactory::new(),
            graph: None,
            steps_in_graph: 0,
            stats: ChaseStats::default(),
            obs: Obs::disabled(),
        }
    }

    /// Attach an observability sink: each [`TgdChaseEngine::run`] spans
    /// `chase.run`, records its per-turn delta-window sizes into the
    /// `chase.delta_window` histogram, and flushes the run's
    /// [`ChaseStats`] delta into `chase.*` counters. The engine's worker
    /// pool inherits the same sink. Recording never changes the chase
    /// itself — graph, firing order, null names and stats stay
    /// byte-identical.
    pub fn set_obs(&mut self, obs: Obs) {
        self.runtime = self.runtime.clone().with_obs(obs.clone());
        self.obs = obs;
    }

    /// Builder form of [`TgdChaseEngine::set_obs`].
    pub fn with_obs(mut self, obs: Obs) -> TgdChaseEngine {
        self.set_obs(obs);
        self
    }

    /// Cumulative evaluation-effort counters (across graphs and
    /// [`TgdChaseEngine::run`] calls).
    pub fn stats(&self) -> ChaseStats {
        self.stats
    }

    /// Chases `graph` in place until every tgd is satisfied or the step
    /// bound trips ([`GdxError::LimitExceeded`]).
    pub fn run(&mut self, graph: &mut Graph) -> Result<()> {
        if self.graph != Some(graph.id()) {
            for rule in &mut self.rules {
                rule.body = SemiNaiveState::new();
                rule.head = IncrementalCache::new();
                rule.primed = false;
            }
            self.nulls = NullFactory::new();
            self.graph = Some(graph.id());
            self.steps_in_graph = 0;
        }
        // Every rule re-enters the worklist: if nothing changed since the
        // last run, its delta is empty and the turn costs O(1).
        for rule in &mut self.rules {
            rule.dirty = true;
        }
        let _span = self
            .obs
            .span_fields("chase.run", &[("rules", self.rules.len() as u64)]);
        let before = self.stats;
        let result = match self.cfg.mode {
            TgdChaseMode::SemiNaive => self.run_semi_naive(graph),
            TgdChaseMode::Naive => self.run_naive(graph),
        };
        // Flush this run's effort delta into the registry at the batch
        // boundary — cumulative counters take deltas, never snapshots.
        self.stats.delta_since(&before).record_into(&self.obs);
        if result.is_err() {
            // An error abandons the current delta batch mid-flight: the
            // per-rule marks have already advanced past matches that were
            // never fired. Drop the binding so a later `run` on this graph
            // resets the caches and re-chases from scratch instead of
            // silently reporting a fixpoint.
            self.graph = None;
        }
        result
    }

    fn run_semi_naive(&mut self, graph: &mut Graph) -> Result<()> {
        // Round-robin over dirty rules (rotating cursor): a self-feeding
        // rule must not starve the others, mirroring the fairness of the
        // naive round-robin oracle.
        let mut cursor = 0usize;
        loop {
            let n = self.rules.len();
            let Some(ri) = (0..n)
                .map(|k| (cursor + k) % n)
                .find(|&i| self.rules[i].dirty)
            else {
                return Ok(());
            };
            cursor = (ri + 1) % n.max(1);
            self.rules[ri].dirty = false;
            self.stats.turns += 1;
            let turn_start = graph.epoch();

            let rt = self.runtime.clone();
            let matches = {
                let rule = &mut self.rules[ri];
                if rule.primed {
                    self.stats.delta_evals += 1;
                } else {
                    self.stats.full_evals += 1;
                    rule.primed = true;
                }
                rule.body.delta_matches_rt(graph, &rule.tgd.body, &rt)?
            };
            self.stats.body_rows += matches.len();
            self.obs.observe("chase.delta_window", matches.len() as u64);

            let vars: Vec<Symbol> = matches.vars().to_vec();
            // Speculative parallel head pre-filter: check every match's
            // head against the *batch-start* graph across workers. Heads
            // are positive and the tgd chase only grows the graph, so a
            // "witnessed" verdict is monotone — those rows can never fire
            // and are skipped outright. "Unwitnessed" verdicts are only
            // hints: the sequential loop below re-checks them against the
            // current graph (earlier firings in this batch may have
            // produced the witness), in exactly the order and with
            // exactly the outcomes of a 1-worker run.
            let spec_witnessed =
                speculative_head_filter(graph, &self.rules[ri].tgd, &vars, &matches, &rt)?;
            for (row, &witnessed_at_start) in matches.rows().zip(&spec_witnessed) {
                if witnessed_at_start {
                    continue;
                }
                let m: FxHashMap<Symbol, NodeId> =
                    vars.iter().copied().zip(row.iter().copied()).collect();
                let rule = &mut self.rules[ri];
                if head_witnessed_incremental(graph, &rule.tgd, &m, &mut rule.head)? {
                    continue;
                }
                // Budget check precedes the firing: a chase that reaches
                // fixpoint in exactly `max_steps` firings succeeds; only
                // a would-be firing *beyond* the budget trips the limit
                // (at max_steps = 0, any needed firing trips it).
                if self.steps_in_graph >= self.cfg.max_steps {
                    return Err(step_limit(self.cfg.max_steps));
                }
                let births = rule.tgd.existential.len();
                fire(graph, &rule.tgd, &m, &mut self.nulls)?;
                self.stats.steps += 1;
                self.stats.null_births += births;
                self.steps_in_graph += 1;
            }

            // Dirty every rule the turn's new edges/nodes could affect
            // (including this one: its own firings can feed its body).
            let added_labels: FxHashSet<Symbol> =
                graph.edges_since(turn_start).map(|&(_, l, _)| l).collect();
            let nodes_added = graph.epoch().nodes() > turn_start.nodes();
            if !added_labels.is_empty() || nodes_added {
                for rule in &mut self.rules {
                    rule.dirty |= rule.symbols.iter().any(|s| added_labels.contains(s))
                        || (nodes_added && rule.nullable_atom);
                }
            }
        }
    }

    fn run_naive(&mut self, graph: &mut Graph) -> Result<()> {
        loop {
            let mut fired_this_round = false;
            for ri in 0..self.rules.len() {
                self.stats.turns += 1;
                self.stats.full_evals += 1;
                // Body matches are computed against the current graph from
                // a cold cache; firing invalidates it, so matches are
                // collected first.
                let matches: Vec<FxHashMap<Symbol, NodeId>> = {
                    let rule = &self.rules[ri];
                    let b = rule.body_q.matches(graph, &mut EvalCache::new())?;
                    let vars: Vec<Symbol> = b.vars().to_vec();
                    b.rows()
                        .map(|row| vars.iter().copied().zip(row.iter().copied()).collect())
                        .collect()
                };
                self.stats.body_rows += matches.len();
                for m in matches {
                    let rule = &self.rules[ri];
                    if head_witnessed(graph, &rule.tgd, &rule.head_q, &m)? {
                        continue;
                    }
                    // Same pre-firing budget check as the semi-naive
                    // loop: exactly-max_steps chases succeed, and the
                    // two modes trip the limit at the same firing count.
                    if self.steps_in_graph >= self.cfg.max_steps {
                        return Err(step_limit(self.cfg.max_steps));
                    }
                    let tgd = &self.rules[ri].tgd;
                    let births = tgd.existential.len();
                    fire(graph, tgd, &m, &mut self.nulls)?;
                    self.stats.steps += 1;
                    self.stats.null_births += births;
                    self.steps_in_graph += 1;
                    fired_this_round = true;
                }
            }
            if !fired_this_round {
                return Ok(());
            }
        }
    }
}

fn step_limit(max_steps: usize) -> GdxError {
    GdxError::limit(format!(
        "target-tgd chase exceeded {max_steps} steps (non-terminating set?)"
    ))
}

/// Runs the restricted chase of `tgds` on a copy of `graph` until every
/// tgd is satisfied or the step bound trips ([`GdxError::LimitExceeded`]).
pub fn chase_target_tgds(
    graph: &Graph,
    tgds: &[TargetTgd],
    cfg: TgdChaseConfig,
) -> Result<TgdChaseResult> {
    let mut g = graph.clone();
    let mut engine = TgdChaseEngine::new(tgds, cfg);
    engine.run(&mut g)?;
    let stats = engine.stats();
    Ok(TgdChaseResult {
        graph: g,
        steps: stats.steps,
        stats,
    })
}

/// Does the head hold under the body match (some assignment of the
/// existential variables)? Naive-mode variant: cold cache per check. The
/// frontier seed bounds the head atoms' endpoints, so the access-path
/// planner answers by seeded product-BFS with an early exit instead of
/// materializing head relations.
fn head_witnessed(
    graph: &Graph,
    tgd: &TargetTgd,
    head_q: &PreparedQuery,
    body_match: &FxHashMap<Symbol, NodeId>,
) -> Result<bool> {
    let mut cache = EvalCache::new();
    let seed = head_seed(tgd, body_match);
    head_q.evaluate_seeded_exists(graph, &mut cache, &seed)
}

/// Minimum match rows in a batch before the head pre-filter fans out.
const SPEC_MIN_ROWS: usize = 512;

/// Speculatively head-checks a batch of body matches against the current
/// graph, one worker chunk at a time, each worker with its own scratch
/// [`EvalCache`] (a `PreparedQuery`'s demand pool cannot cross threads —
/// see [`gdx_query::evaluate_with_scratch`]). Returns one flag per row:
/// `true` = head witnessed *now*, which by monotonicity (positive heads,
/// growing graph) remains witnessed through all later firings, so the
/// row can be skipped without affecting the firing sequence. `false` is
/// merely "recheck sequentially".
///
/// Sequential runtimes (or small batches) skip the speculation entirely
/// and report all-`false`. Speculation bounds the extra work at one
/// redundant head check per row that ends up firing (re-checked
/// sequentially against the current graph), spread over the workers — a
/// net win whenever a meaningful share of the batch is already
/// witnessed, and at worst ~2/N of the sequential head-check time.
fn speculative_head_filter(
    graph: &Graph,
    tgd: &TargetTgd,
    vars: &[Symbol],
    matches: &gdx_query::NodeBindings,
    rt: &Runtime,
) -> Result<Vec<bool>> {
    if !rt.is_parallel() || matches.len() < SPEC_MIN_ROWS {
        return Ok(vec![false; matches.len()]);
    }
    // Row slices into the flat bindings buffer, so chunks stay slices.
    let rows: Vec<&[NodeId]> = matches.rows().collect();
    // About two chunks per worker: each chunk pays one scratch-cache
    // compilation, so coarse chunks amortize it.
    let chunk = rows.len().div_ceil(rt.workers() * 2).max(64);
    let chunks = rt.par_chunks(&rows, chunk, |_, chunk| -> Result<Vec<bool>> {
        let mut cache = EvalCache::new();
        chunk
            .iter()
            .map(|row| {
                let m: FxHashMap<Symbol, NodeId> =
                    vars.iter().copied().zip(row.iter().copied()).collect();
                let seed = head_seed(tgd, &m);
                Ok(!evaluate_with_scratch(
                    graph,
                    &tgd.head,
                    &mut cache,
                    &seed,
                    PlannerMode::Auto,
                    Some(1),
                    &Runtime::sequential(),
                )?
                .is_empty())
            })
            .collect()
    });
    let mut flags = Vec::with_capacity(rows.len());
    for chunk in chunks {
        flags.extend(chunk?);
    }
    Ok(flags)
}

/// Incremental variant: the per-rule head cache (materialized relations
/// advanced by graph deltas, plus memoized demand evaluators) persists
/// across checks.
fn head_witnessed_incremental(
    graph: &Graph,
    tgd: &TargetTgd,
    body_match: &FxHashMap<Symbol, NodeId>,
    cache: &mut IncrementalCache,
) -> Result<bool> {
    let seed = head_seed(tgd, body_match);
    evaluate_seeded_incremental_exists(graph, &tgd.head, cache, &seed)
}

/// Frontier variables of the head, seeded from the body match.
fn head_seed(tgd: &TargetTgd, body_match: &FxHashMap<Symbol, NodeId>) -> FxHashMap<Symbol, NodeId> {
    tgd.head
        .variables()
        .into_iter()
        .filter_map(|v| body_match.get(&v).map(|&id| (v, id)))
        .collect()
}

/// Materializes the head under the body match, inventing fresh nulls.
fn fire(
    graph: &mut Graph,
    tgd: &TargetTgd,
    body_match: &FxHashMap<Symbol, NodeId>,
    nulls: &mut NullFactory,
) -> Result<()> {
    let mut fresh: FxHashMap<Symbol, NodeId> = FxHashMap::default();
    for &y in &tgd.existential {
        fresh.insert(y, nulls.fresh_in(graph));
    }
    let resolve = |g: &mut Graph, t: &Term, fresh: &FxHashMap<Symbol, NodeId>| -> Result<NodeId> {
        match t {
            Term::Const(c) => Ok(g.add_node(Node::Const(*c))),
            Term::Var(v) => fresh
                .get(v)
                .or_else(|| body_match.get(v))
                .copied()
                .ok_or_else(|| GdxError::schema(format!("unbound head variable {v}"))),
        }
    };
    for atom in &tgd.head.atoms {
        let s = resolve(graph, &atom.left, &fresh)?;
        let d = resolve(graph, &atom.right, &fresh)?;
        let w = witness::shortest(&atom.nre);
        if w.main_len() == 0 && s != d {
            let w2 = witness::shortest_nonempty(&atom.nre).ok_or_else(|| {
                GdxError::unsupported("target tgd head atom with ε-only NRE between distinct nodes")
            })?;
            witness::materialize(graph, &w2, s, d)?;
        } else {
            witness::materialize(graph, &w, s, d)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdx_query::Cnre;

    fn tgd(body: &str, existential: &[&str], head: &str) -> TargetTgd {
        TargetTgd {
            body: Cnre::parse(body).unwrap(),
            existential: existential.iter().map(|s| Symbol::new(s)).collect(),
            head: Cnre::parse(head).unwrap(),
        }
    }

    fn both_modes() -> [TgdChaseConfig; 2] {
        [
            TgdChaseConfig::default(),
            TgdChaseConfig {
                mode: TgdChaseMode::Naive,
                ..TgdChaseConfig::default()
            },
        ]
    }

    #[test]
    fn satisfied_tgd_does_not_fire() {
        let g = Graph::parse("(a, f, b); (b, g, c);").unwrap();
        let t = tgd("(x, f, y)", &["z"], "(y, g, z)");
        for cfg in both_modes() {
            let out = chase_target_tgds(&g, std::slice::from_ref(&t), cfg).unwrap();
            assert_eq!(out.steps, 0);
            assert_eq!(out.graph.edge_count(), 2);
        }
    }

    #[test]
    fn unsatisfied_tgd_fires_once() {
        let g = Graph::parse("(a, f, b);").unwrap();
        let t = tgd("(x, f, y)", &["z"], "(y, g, z)");
        for cfg in both_modes() {
            let out = chase_target_tgds(&g, std::slice::from_ref(&t), cfg).unwrap();
            assert_eq!(out.steps, 1);
            assert_eq!(out.graph.edge_count(), 2);
            assert_eq!(out.graph.node_count(), 3);
        }
    }

    #[test]
    fn cascading_fires_terminate_when_acyclic() {
        // f-edge demands g-edge; g-edge demands h-edge.
        let g = Graph::parse("(a, f, b);").unwrap();
        let ts = [
            tgd("(x, f, y)", &["z"], "(y, g, z)"),
            tgd("(x, g, y)", &["w"], "(y, h0, w)"),
        ];
        for cfg in both_modes() {
            let out = chase_target_tgds(&g, &ts, cfg).unwrap();
            assert_eq!(out.steps, 2);
            assert_eq!(out.graph.edge_count(), 3);
        }
    }

    #[test]
    fn non_terminating_set_hits_bound() {
        // Every f-edge demands another f-edge: infinite chase.
        let g = Graph::parse("(a, f, b);").unwrap();
        let t = tgd("(x, f, y)", &["z"], "(y, f, z)");
        for mode in [TgdChaseMode::SemiNaive, TgdChaseMode::Naive] {
            let err = chase_target_tgds(
                &g,
                std::slice::from_ref(&t),
                TgdChaseConfig {
                    max_steps: 50,
                    mode,
                    ..TgdChaseConfig::default()
                },
            );
            assert!(matches!(err, Err(GdxError::LimitExceeded(_))));
        }
    }

    #[test]
    fn exactly_max_steps_firings_succeed() {
        // Three f-edges each demand one g-edge: the chase reaches
        // fixpoint in exactly 3 firings. A budget of exactly 3 must
        // succeed in both modes; a budget of 2 must trip, and a budget
        // of 0 trips on the first needed firing.
        let g = Graph::parse("(a, f, b); (c, f, d); (e, f, q);").unwrap();
        let t = tgd("(x, f, y)", &["z"], "(y, g, z)");
        for mode in [TgdChaseMode::SemiNaive, TgdChaseMode::Naive] {
            let cfg = |max_steps| TgdChaseConfig {
                max_steps,
                mode,
                ..TgdChaseConfig::default()
            };
            let out = chase_target_tgds(&g, std::slice::from_ref(&t), cfg(3)).unwrap();
            assert_eq!(out.steps, 3, "{mode:?}");
            for budget in [0, 2] {
                assert!(
                    matches!(
                        chase_target_tgds(&g, std::slice::from_ref(&t), cfg(budget)),
                        Err(GdxError::LimitExceeded(_))
                    ),
                    "{mode:?} with budget {budget}"
                );
            }
            // An already-satisfied graph needs no firings: even a zero
            // budget succeeds.
            let done = chase_target_tgds(&out.graph, std::slice::from_ref(&t), cfg(0)).unwrap();
            assert_eq!(done.steps, 0, "{mode:?}");
        }
    }

    #[test]
    fn existential_reuse_within_head() {
        // One fresh z shared by two head atoms.
        let g = Graph::parse("(a, f, b);").unwrap();
        let t = tgd("(x, f, y)", &["z"], "(y, g, z), (z, g, x)");
        for cfg in both_modes() {
            let out = chase_target_tgds(&g, std::slice::from_ref(&t), cfg).unwrap();
            assert_eq!(out.steps, 1);
            assert_eq!(out.graph.node_count(), 3);
            assert_eq!(out.graph.edge_count(), 3);
        }
    }

    #[test]
    fn nre_heads_materialize_witnesses() {
        // Head demands y -g·g→ x: two edges through a fresh null.
        let g = Graph::parse("(a, f, b);").unwrap();
        let t = tgd("(x, f, y)", &[], "(y, g.g, x)");
        let out = chase_target_tgds(&g, &[t], TgdChaseConfig::default()).unwrap();
        assert_eq!(out.steps, 1);
        assert_eq!(out.graph.edge_count(), 3);
        // The demand is now satisfied; chasing again is a no-op.
        let again = chase_target_tgds(
            &out.graph,
            &[tgd("(x, f, y)", &[], "(y, g.g, x)")],
            TgdChaseConfig::default(),
        )
        .unwrap();
        assert_eq!(again.steps, 0);
    }

    #[test]
    fn star_heads_satisfied_by_zero_steps() {
        // (y, f*, x) with y≠x needs a path; shortest non-empty is one f.
        let g = Graph::parse("(a, f, b);").unwrap();
        let t = tgd("(x, f, y)", &[], "(y, f*, x)");
        let out = chase_target_tgds(&g, &[t], TgdChaseConfig::default()).unwrap();
        assert_eq!(out.steps, 1);
        let a = out.graph.node_id(Node::cst("a")).unwrap();
        let b = out.graph.node_id(Node::cst("b")).unwrap();
        assert!(gdx_nre::eval::holds(
            &out.graph,
            &gdx_nre::parse::parse_nre("f*").unwrap(),
            b,
            a
        ));
    }

    #[test]
    fn engine_restarts_preserve_caches_and_consume_foreign_deltas() {
        // Run to fixpoint, mutate the graph from outside, run again: the
        // engine picks up exactly the foreign delta and its consequences.
        let mut g = Graph::parse("(a, f, b);").unwrap();
        let t = tgd("(x, f, y)", &["z"], "(y, g, z)");
        let mut engine = TgdChaseEngine::new(std::slice::from_ref(&t), TgdChaseConfig::default());
        engine.run(&mut g).unwrap();
        assert_eq!(engine.stats().steps, 1);
        let full_evals_after_first = engine.stats().full_evals;

        let c = g.add_const("c");
        let a = g.node_id(Node::cst("a")).unwrap();
        g.add_edge_labelled(c, "f", a);
        engine.run(&mut g).unwrap();
        assert_eq!(engine.stats().steps, 2, "one firing for the new f-edge");
        assert_eq!(
            engine.stats().full_evals,
            full_evals_after_first,
            "restart must reuse the per-rule cache, not re-prime it"
        );
    }

    #[test]
    fn engine_resets_after_step_limit_error() {
        // Hitting the step bound abandons a delta batch mid-flight; the
        // engine must not treat that graph as chased afterwards.
        let mut g = Graph::parse("(a, f, b); (c, f, d); (e, f, q);").unwrap();
        let t = tgd("(x, f, y)", &["z"], "(y, g, z)");
        let mut engine = TgdChaseEngine::new(
            std::slice::from_ref(&t),
            TgdChaseConfig {
                max_steps: 2,
                ..TgdChaseConfig::default()
            },
        );
        assert!(matches!(
            engine.run(&mut g),
            Err(GdxError::LimitExceeded(_))
        ));
        // A budget-raised rerun on the same graph must re-chase from
        // scratch, not report a silent fixpoint over the lost matches.
        engine.cfg.max_steps = 100;
        engine.run(&mut g).unwrap();
        for name in ["b", "d", "q"] {
            let id = g.node_id(Node::cst(name)).unwrap();
            assert_eq!(
                g.successors(id, gdx_common::Symbol::new("g")).len(),
                1,
                "{name} must have its g-successor"
            );
        }
        // 2 fires before the trip; the rerun re-evaluates everything but
        // only the one unwitnessed match still fires.
        assert_eq!(engine.stats().steps, 3);
    }

    #[test]
    fn engine_resets_on_graph_replacement() {
        let g = Graph::parse("(a, f, b);").unwrap();
        let t = tgd("(x, f, y)", &["z"], "(y, g, z)");
        let mut engine = TgdChaseEngine::new(std::slice::from_ref(&t), TgdChaseConfig::default());
        let mut g1 = g.clone();
        engine.run(&mut g1).unwrap();
        assert_eq!(engine.stats().steps, 1);
        // A clone is a different graph value: the engine restarts cleanly
        // and chases it from scratch.
        let mut g2 = g.clone();
        engine.run(&mut g2).unwrap();
        assert_eq!(engine.stats().steps, 2);
        assert_eq!(g2.edge_count(), 2);
    }

    #[test]
    fn obs_recording_matches_stats_and_never_perturbs_the_chase() {
        let g = Graph::parse("(a, f, b); (c, f, d);").unwrap();
        let t = tgd("(x, f, y)", &["z"], "(y, g, z)");
        let obs = Obs::enabled();
        let mut observed = g.clone();
        let mut engine = TgdChaseEngine::new(std::slice::from_ref(&t), TgdChaseConfig::default())
            .with_obs(obs.clone());
        engine.run(&mut observed).unwrap();

        let reg = obs.registry().unwrap();
        let stats = engine.stats();
        assert_eq!(reg.counter("chase.firings"), stats.steps as u64);
        assert_eq!(reg.counter("chase.turns"), stats.turns as u64);
        assert_eq!(reg.counter("chase.null_births"), stats.null_births as u64);
        assert_eq!(stats.null_births, 2, "one fresh z per firing");
        let trace = obs.render_trace(16);
        assert!(trace.contains("enter chase.run rules=1"), "{trace}");
        assert!(trace.contains("exit chase.run"), "{trace}");

        // The identical chase with recording disabled: same graph, same
        // counters.
        let mut plain_graph = g.clone();
        let mut plain = TgdChaseEngine::new(std::slice::from_ref(&t), TgdChaseConfig::default());
        plain.run(&mut plain_graph).unwrap();
        assert_eq!(plain.stats(), stats);
        assert_eq!(plain_graph.edge_count(), observed.edge_count());
        assert_eq!(plain_graph.node_count(), observed.node_count());
    }

    #[test]
    fn chase_stats_json_is_stable() {
        let stats = ChaseStats {
            steps: 1,
            turns: 2,
            body_rows: 3,
            full_evals: 4,
            delta_evals: 5,
            null_births: 6,
        };
        assert_eq!(
            stats.render_json(),
            "{\"steps\": 1, \"turns\": 2, \"body_rows\": 3, \"full_evals\": 4, \"delta_evals\": 5, \"null_births\": 6}"
        );
        let earlier = ChaseStats {
            steps: 1,
            ..ChaseStats::default()
        };
        assert_eq!(stats.delta_since(&earlier).steps, 0);
        assert_eq!(stats.delta_since(&earlier).turns, 2);
    }

    #[test]
    fn semi_naive_examines_fewer_rows_on_chains() {
        // A chain of k rules forces k naive rounds, each re-evaluating
        // every body; the semi-naive engine touches each match once.
        let g = Graph::parse("(a, l0, b); (b, l0, c); (c, l0, d);").unwrap();
        let ts: Vec<TargetTgd> = (0..4)
            .map(|i| {
                tgd(
                    &format!("(x, l{i}, y)"),
                    &["z"],
                    &format!("(y, l{}, z)", i + 1),
                )
            })
            .collect();
        let semi = chase_target_tgds(&g, &ts, TgdChaseConfig::default()).unwrap();
        let naive = chase_target_tgds(
            &g,
            &ts,
            TgdChaseConfig {
                mode: TgdChaseMode::Naive,
                ..TgdChaseConfig::default()
            },
        )
        .unwrap();
        assert_eq!(semi.steps, naive.steps);
        assert!(
            naive.stats.body_rows >= 2 * semi.stats.body_rows,
            "expected ≥2× fewer rows examined: naive {} vs semi-naive {}",
            naive.stats.body_rows,
            semi.stats.body_rows
        );
    }
}
