//! Bounded restricted chase for target tgds on concrete graphs.
//!
//! A target tgd `φ_Σ(x̄) → ∃ȳ ψ_Σ(x̄, ȳ)` fires on a body match whose head
//! has no witness; firing materializes the head atoms (shortest witness
//! paths, fresh nulls for `ȳ`). The chase may not terminate in general —
//! callers either verify weak acyclicity first
//! ([`crate::weak_acyclicity`]) or rely on the step bound.

use gdx_common::{FxHashMap, GdxError, Result, Symbol, Term};
use gdx_graph::{Graph, Node, NodeId};
use gdx_mapping::TargetTgd;
use gdx_nre::eval::EvalCache;
use gdx_nre::witness;
use gdx_query::{evaluate_seeded, evaluate_with_cache};

/// Configuration of the target-tgd chase.
#[derive(Debug, Clone, Copy)]
pub struct TgdChaseConfig {
    /// Maximum number of firings before giving up.
    pub max_steps: usize,
}

impl Default for TgdChaseConfig {
    fn default() -> TgdChaseConfig {
        TgdChaseConfig { max_steps: 10_000 }
    }
}

/// Output of the target-tgd chase.
#[derive(Debug, Clone)]
pub struct TgdChaseResult {
    /// The chased graph.
    pub graph: Graph,
    /// Number of tgd firings.
    pub steps: usize,
}

/// Runs the restricted chase of `tgds` on `graph` until every tgd is
/// satisfied or the step bound trips ([`GdxError::LimitExceeded`]).
pub fn chase_target_tgds(
    graph: &Graph,
    tgds: &[TargetTgd],
    cfg: TgdChaseConfig,
) -> Result<TgdChaseResult> {
    let mut g = graph.clone();
    let mut steps = 0usize;
    loop {
        let mut fired_this_round = false;
        for tgd in tgds {
            // Body matches are computed against the current graph; firing
            // invalidates the cache, so matches are collected first.
            let matches: Vec<FxHashMap<Symbol, NodeId>> = {
                let mut cache = EvalCache::new();
                let b = evaluate_with_cache(&g, &tgd.body, &mut cache)?;
                let vars: Vec<Symbol> = b.vars().to_vec();
                b.rows()
                    .iter()
                    .map(|row| vars.iter().copied().zip(row.iter().copied()).collect())
                    .collect()
            };
            for m in matches {
                if head_has_witness(&g, tgd, &m)? {
                    continue;
                }
                fire(&mut g, tgd, &m)?;
                steps += 1;
                fired_this_round = true;
                if steps >= cfg.max_steps {
                    return Err(GdxError::limit(format!(
                        "target-tgd chase exceeded {} steps (non-terminating set?)",
                        cfg.max_steps
                    )));
                }
            }
        }
        if !fired_this_round {
            return Ok(TgdChaseResult { graph: g, steps });
        }
    }
}

/// Does the head hold under the body match (some assignment of the
/// existential variables)?
fn head_has_witness(
    graph: &Graph,
    tgd: &TargetTgd,
    body_match: &FxHashMap<Symbol, NodeId>,
) -> Result<bool> {
    let mut cache = EvalCache::new();
    let seed: FxHashMap<Symbol, NodeId> = tgd
        .head
        .variables()
        .into_iter()
        .filter_map(|v| body_match.get(&v).map(|&id| (v, id)))
        .collect();
    let answers = evaluate_seeded(graph, &tgd.head, &mut cache, &seed)?;
    Ok(!answers.is_empty())
}

/// Materializes the head under the body match, inventing fresh nulls.
fn fire(graph: &mut Graph, tgd: &TargetTgd, body_match: &FxHashMap<Symbol, NodeId>) -> Result<()> {
    let mut fresh: FxHashMap<Symbol, NodeId> = FxHashMap::default();
    for &y in &tgd.existential {
        fresh.insert(y, graph.add_fresh_null());
    }
    let resolve = |g: &mut Graph, t: &Term, fresh: &FxHashMap<Symbol, NodeId>| -> Result<NodeId> {
        match t {
            Term::Const(c) => Ok(g.add_node(Node::Const(*c))),
            Term::Var(v) => fresh
                .get(v)
                .or_else(|| body_match.get(v))
                .copied()
                .ok_or_else(|| GdxError::schema(format!("unbound head variable {v}"))),
        }
    };
    for atom in &tgd.head.atoms {
        let s = resolve(graph, &atom.left, &fresh)?;
        let d = resolve(graph, &atom.right, &fresh)?;
        let w = witness::shortest(&atom.nre);
        if w.main_len() == 0 && s != d {
            let w2 = witness::shortest_nonempty(&atom.nre).ok_or_else(|| {
                GdxError::unsupported(
                    "target tgd head atom with ε-only NRE between distinct nodes",
                )
            })?;
            witness::materialize(graph, &w2, s, d)?;
        } else {
            witness::materialize(graph, &w, s, d)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdx_query::Cnre;

    fn tgd(body: &str, existential: &[&str], head: &str) -> TargetTgd {
        TargetTgd {
            body: Cnre::parse(body).unwrap(),
            existential: existential.iter().map(|s| Symbol::new(s)).collect(),
            head: Cnre::parse(head).unwrap(),
        }
    }

    #[test]
    fn satisfied_tgd_does_not_fire() {
        let g = Graph::parse("(a, f, b); (b, g, c);").unwrap();
        let t = tgd("(x, f, y)", &["z"], "(y, g, z)");
        let out = chase_target_tgds(&g, &[t], TgdChaseConfig::default()).unwrap();
        assert_eq!(out.steps, 0);
        assert_eq!(out.graph.edge_count(), 2);
    }

    #[test]
    fn unsatisfied_tgd_fires_once() {
        let g = Graph::parse("(a, f, b);").unwrap();
        let t = tgd("(x, f, y)", &["z"], "(y, g, z)");
        let out = chase_target_tgds(&g, &[t], TgdChaseConfig::default()).unwrap();
        assert_eq!(out.steps, 1);
        assert_eq!(out.graph.edge_count(), 2);
        assert_eq!(out.graph.node_count(), 3);
    }

    #[test]
    fn cascading_fires_terminate_when_acyclic() {
        // f-edge demands g-edge; g-edge demands h-edge.
        let g = Graph::parse("(a, f, b);").unwrap();
        let ts = [
            tgd("(x, f, y)", &["z"], "(y, g, z)"),
            tgd("(x, g, y)", &["w"], "(y, h0, w)"),
        ];
        let out = chase_target_tgds(&g, &ts, TgdChaseConfig::default()).unwrap();
        assert_eq!(out.steps, 2);
        assert_eq!(out.graph.edge_count(), 3);
    }

    #[test]
    fn non_terminating_set_hits_bound() {
        // Every f-edge demands another f-edge: infinite chase.
        let g = Graph::parse("(a, f, b);").unwrap();
        let t = tgd("(x, f, y)", &["z"], "(y, f, z)");
        let err = chase_target_tgds(&g, &[t], TgdChaseConfig { max_steps: 50 });
        assert!(matches!(err, Err(GdxError::LimitExceeded(_))));
    }

    #[test]
    fn existential_reuse_within_head() {
        // One fresh z shared by two head atoms.
        let g = Graph::parse("(a, f, b);").unwrap();
        let t = tgd("(x, f, y)", &["z"], "(y, g, z), (z, g, x)");
        let out = chase_target_tgds(&g, &[t], TgdChaseConfig::default()).unwrap();
        assert_eq!(out.steps, 1);
        assert_eq!(out.graph.node_count(), 3);
        assert_eq!(out.graph.edge_count(), 3);
    }

    #[test]
    fn nre_heads_materialize_witnesses() {
        // Head demands y -g·g→ x: two edges through a fresh null.
        let g = Graph::parse("(a, f, b);").unwrap();
        let t = tgd("(x, f, y)", &[], "(y, g.g, x)");
        let out = chase_target_tgds(&g, &[t], TgdChaseConfig::default()).unwrap();
        assert_eq!(out.steps, 1);
        assert_eq!(out.graph.edge_count(), 3);
        // The demand is now satisfied; chasing again is a no-op.
        let again =
            chase_target_tgds(&out.graph, &[tgd("(x, f, y)", &[], "(y, g.g, x)")],
                TgdChaseConfig::default())
            .unwrap();
        assert_eq!(again.steps, 0);
    }

    #[test]
    fn star_heads_satisfied_by_zero_steps() {
        // (y, f*, x) with y≠x needs a path; shortest non-empty is one f.
        let g = Graph::parse("(a, f, b);").unwrap();
        let t = tgd("(x, f, y)", &[], "(y, f*, x)");
        let out = chase_target_tgds(&g, &[t], TgdChaseConfig::default()).unwrap();
        assert_eq!(out.steps, 1);
        let a = out.graph.node_id(Node::cst("a")).unwrap();
        let b = out.graph.node_id(Node::cst("b")).unwrap();
        assert!(gdx_nre::eval::holds(
            &out.graph,
            &gdx_nre::parse::parse_nre("f*").unwrap(),
            b,
            a
        ));
    }
}
