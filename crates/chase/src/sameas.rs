//! sameAs saturation on concrete graphs.
//!
//! Section 4.2: with sameAs constraints instead of egds, solutions always
//! exist — take any graph represented by the chased pattern and *add* the
//! sameAs edges the constraints demand. Adding edges can enable further
//! matches (bodies may mention `sameAs` themselves), so saturation runs to
//! fixpoint. Since each round only adds edges over a fixed node set, the
//! process terminates in at most `|V|²·|constraints|` additions — this is
//! the polynomial half of the paper's egd-vs-sameAs contrast.
//!
//! Saturation only ever *adds* edges to one graph value, so it is a
//! perfect fit for the delta layer: [`SameAsEngine`] keeps one persistent
//! [`SemiNaiveState`] per constraint, each round examines only the body
//! matches enabled since the previous round, and the engine survives
//! across [`SameAsEngine::saturate`] calls — the solver's fixpoint loop
//! re-saturates after every tgd round without re-deriving old matches.

use gdx_common::{GdxError, Result};
use gdx_graph::Graph;
use gdx_mapping::{same_as_symbol, SameAs};
use gdx_nre::eval::EvalCache;
use gdx_query::{PreparedQuery, SemiNaiveState};

/// Restartable semi-naive sameAs saturator: per-constraint delta states
/// that persist across rounds and across calls on the same graph value
/// (graph replacement resets them transparently).
#[derive(Debug)]
pub struct SameAsEngine {
    constraints: Vec<SameAs>,
    states: Vec<SemiNaiveState>,
}

impl SameAsEngine {
    /// An engine for the given constraints.
    pub fn new(constraints: &[SameAs]) -> SameAsEngine {
        SameAsEngine {
            constraints: constraints.to_vec(),
            states: constraints.iter().map(|_| SemiNaiveState::new()).collect(),
        }
    }

    /// Saturates `graph` in place until every constraint is satisfied.
    /// Returns the number of edges added by this call.
    pub fn saturate(&mut self, graph: &mut Graph) -> Result<usize> {
        let sa = same_as_symbol();
        let mut added = 0usize;
        loop {
            let mut new_edges = Vec::new();
            for (c, state) in self.constraints.iter().zip(&mut self.states) {
                // Only the body matches that appeared since this
                // constraint's previous look at the graph.
                let matches = state.delta_matches(graph, &c.body)?;
                let vars = matches.vars();
                let li = vars
                    .iter()
                    .position(|&v| v == c.lhs)
                    .ok_or_else(|| GdxError::schema("sameAs lhs not in body"))?;
                let ri = vars
                    .iter()
                    .position(|&v| v == c.rhs)
                    .ok_or_else(|| GdxError::schema("sameAs rhs not in body"))?;
                for row in matches.rows() {
                    let (u, v) = (row[li], row[ri]);
                    if !graph.has_edge(u, sa, v) {
                        new_edges.push((u, v));
                    }
                }
            }
            if new_edges.is_empty() {
                return Ok(added);
            }
            for (u, v) in new_edges {
                if graph.add_edge(u, sa, v) {
                    added += 1;
                }
            }
        }
    }
}

/// Saturates `graph` with sameAs edges until every constraint is
/// satisfied. Returns the number of edges added. One-shot wrapper around
/// [`SameAsEngine`]; callers that re-saturate a growing graph should hold
/// an engine instead.
pub fn saturate_same_as(graph: &mut Graph, constraints: &[SameAs]) -> Result<usize> {
    SameAsEngine::new(constraints).saturate(graph)
}

/// Checks whether `graph` satisfies every sameAs constraint (no saturation).
pub fn same_as_satisfied(graph: &Graph, constraints: &[SameAs]) -> Result<bool> {
    let sa = same_as_symbol();
    let mut cache = EvalCache::new();
    for c in constraints {
        let matches = PreparedQuery::new(c.body.clone()).matches(graph, &mut cache)?;
        let vars = matches.vars();
        let li = vars.iter().position(|&v| v == c.lhs);
        let ri = vars.iter().position(|&v| v == c.rhs);
        let (Some(li), Some(ri)) = (li, ri) else {
            return Err(GdxError::schema("sameAs endpoint not in body"));
        };
        for row in matches.rows() {
            if !graph.has_edge(row[li], sa, row[ri]) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdx_common::Symbol;
    use gdx_query::Cnre;

    fn hotel_sameas() -> SameAs {
        SameAs {
            body: Cnre::parse("(x1, h, x3), (x2, h, x3)").unwrap(),
            lhs: Symbol::new("x1"),
            rhs: Symbol::new("x2"),
        }
    }

    #[test]
    fn saturation_adds_required_edges() {
        // Figure 1(c) shape: N2 and N3 share hotel hx.
        let mut g = Graph::parse("(_N1, h, hy); (_N2, h, hx); (_N3, h, hx);").unwrap();
        let c = hotel_sameas();
        assert!(!same_as_satisfied(&g, std::slice::from_ref(&c)).unwrap());
        let added = saturate_same_as(&mut g, std::slice::from_ref(&c)).unwrap();
        // Pairs sharing a hotel: (N1,N1), (N2,N2), (N3,N3), (N2,N3), (N3,N2).
        assert_eq!(added, 5);
        assert!(same_as_satisfied(&g, &[c]).unwrap());
    }

    #[test]
    fn saturation_is_idempotent() {
        let mut g = Graph::parse("(_N2, h, hx); (_N3, h, hx);").unwrap();
        let c = hotel_sameas();
        saturate_same_as(&mut g, std::slice::from_ref(&c)).unwrap();
        let again = saturate_same_as(&mut g, &[c]).unwrap();
        assert_eq!(again, 0);
    }

    #[test]
    fn cascading_constraints() {
        // A constraint whose body mentions sameAs: transitivity.
        let trans = SameAs {
            body: Cnre::parse("(x, sameAs, y), (y, sameAs, z)").unwrap(),
            lhs: Symbol::new("x"),
            rhs: Symbol::new("z"),
        };
        let base = hotel_sameas();
        let mut g = Graph::parse("(_N1, h, a); (_N2, h, a); (_N2, h, b); (_N3, h, b);").unwrap();
        saturate_same_as(&mut g, &[base, trans.clone()]).unwrap();
        // N1 ~ N2 ~ N3 must have closed: (N1, sameAs, N3).
        let n1 = g.node_id(gdx_graph::Node::null("N1")).unwrap();
        let n3 = g.node_id(gdx_graph::Node::null("N3")).unwrap();
        assert!(g.has_edge(n1, same_as_symbol(), n3));
        assert!(same_as_satisfied(&g, &[trans]).unwrap());
    }

    #[test]
    fn empty_constraint_list() {
        let mut g = Graph::parse("(a, h, b);").unwrap();
        assert_eq!(saturate_same_as(&mut g, &[]).unwrap(), 0);
        assert!(same_as_satisfied(&g, &[]).unwrap());
    }

    #[test]
    fn engine_resaturates_incrementally() {
        let mut g = Graph::parse("(_N1, h, hx); (_N2, h, hx);").unwrap();
        let c = hotel_sameas();
        let mut engine = SameAsEngine::new(std::slice::from_ref(&c));
        // 4 pairs over hx: (N1,N1), (N2,N2), (N1,N2), (N2,N1).
        assert_eq!(engine.saturate(&mut g).unwrap(), 4);
        // Nothing changed: re-saturating adds nothing (and, thanks to the
        // delta states, re-derives nothing).
        assert_eq!(engine.saturate(&mut g).unwrap(), 0);
        // A third null joins the hotel: only the new pairs appear.
        let n3 = g.add_node(gdx_graph::Node::null("N3"));
        let hx = g.node_id(gdx_graph::Node::cst("hx")).unwrap();
        g.add_edge_labelled(n3, "h", hx);
        assert_eq!(engine.saturate(&mut g).unwrap(), 5, "pairs touching N3");
        assert!(same_as_satisfied(&g, &[c]).unwrap());
    }

    #[test]
    fn constants_get_sameas_too() {
        // The key contrast with egds: constants can be sameAs-linked.
        let mut g = Graph::parse("(u1, h, hx); (u2, h, hx);").unwrap();
        let c = hotel_sameas();
        saturate_same_as(&mut g, std::slice::from_ref(&c)).unwrap();
        let u1 = g.node_id(gdx_graph::Node::cst("u1")).unwrap();
        let u2 = g.node_id(gdx_graph::Node::cst("u2")).unwrap();
        assert!(g.has_edge(u1, same_as_symbol(), u2));
        assert!(g.has_edge(u2, same_as_symbol(), u1));
    }
}
