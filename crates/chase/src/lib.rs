//! # gdx-chase
//!
//! The chase engines of the reproduction:
//!
//! * [`st`] — the source-to-target chase: evaluates every s-t tgd body over
//!   the relational instance and fires triggers into a [graph pattern]
//!   (the universal-representative construction of Section 3.2, adapted
//!   from graph-to-graph exchange to the relational-to-graph setting);
//! * [`egd_pattern`] — the paper's *adapted chase* of Section 5: egd
//!   steps on graph patterns, with the fail / substitute / merge policy
//!   (constants never merge);
//! * [`sameas`] — sameAs saturation on concrete graphs (the tractable
//!   solution-construction route of Proposition 4.3);
//! * [`tgd`] — a bounded restricted chase for target tgds on concrete
//!   graphs: a semi-naive, worklist-driven, restartable engine
//!   ([`tgd::TgdChaseEngine`]) with naive round-robin kept as the
//!   reference oracle;
//! * [`weak_acyclicity`] — the classical termination criterion, applicable
//!   to the single-symbol fragment of target tgds.
//!
//! [graph pattern]: gdx_pattern::GraphPattern

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]

pub mod egd_pattern;
pub mod sameas;
pub mod st;
pub mod tgd;
pub mod weak_acyclicity;

pub use egd_pattern::{
    chase_egds_on_pattern, chase_egds_on_pattern_obs, EgdChaseConfig, EgdChaseOutcome,
};
pub use sameas::{saturate_same_as, SameAsEngine};
pub use st::{chase_st, chase_st_with_nulls, StChaseResult, StChaseVariant};
pub use tgd::{
    chase_target_tgds, ChaseStats, TgdChaseConfig, TgdChaseEngine, TgdChaseMode, TgdChaseResult,
};
pub use weak_acyclicity::is_weakly_acyclic;
