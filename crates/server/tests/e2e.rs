//! End-to-end tests over real sockets: boot a server, speak HTTP/1.1 to
//! it, compare against the library answers.
//!
//! All servers here inject a `NoopClock`- or test-clock-backed obs
//! handle, so responses and metrics dumps are byte-stable and the
//! deadline tests are deterministic (no real sleeping on the clock
//! path).

use gdx_common::json::{self, Json};
use gdx_exchange::{ExchangeSession, Existence};
use gdx_obs::{Clock, NoopClock, Obs};
use gdx_query::PreparedQuery;
use gdx_relational::Instance;
use gdx_server::wire;
use gdx_server::{serve, ServerConfig, ServerHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SETTING: &str = "source { Flight/3; Hotel/2 }
target { f; h; g }
sttgd Flight(x1, x2, x3), Hotel(x1, x4)
      -> exists y : (x2, f.f*, y), (y, h, x4), (y, f.f*, x3);
egd (x1, h, x3), (x2, h, x3) -> x1 = x2;
tgd (x, f, y) -> exists z : (y, g, z);";

const INSTANCE: &str = "Flight(01, c1, c2); Flight(02, c3, c2);
Hotel(01, hx); Hotel(01, hy); Hotel(02, hx);";

fn library_session() -> ExchangeSession {
    let setting = gdx_mapping::dsl::parse_setting(SETTING).unwrap();
    let instance = Instance::parse(setting.source.clone(), INSTANCE).unwrap();
    ExchangeSession::new(setting, instance)
}

fn noop_obs() -> Obs {
    Obs::with_clock(Arc::new(NoopClock))
}

fn boot(configure: impl FnOnce(&mut ServerConfig)) -> ServerHandle {
    let mut config = ServerConfig::new("127.0.0.1:0");
    config.default_setting = Some(Arc::from(SETTING));
    config.default_instance = Some(Arc::from(INSTANCE));
    config.obs = noop_obs();
    configure(&mut config);
    serve(config).unwrap()
}

/// One parsed response: status, headers (lower-cased names), body
/// (chunked transfer already decoded).
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn json(&self) -> Json {
        json::parse(std::str::from_utf8(&self.body).unwrap()).unwrap()
    }
}

fn read_response(reader: &mut impl BufRead) -> Response {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let status: u16 = line.split(' ').nth(1).unwrap().parse().unwrap();
    let mut headers = Vec::new();
    loop {
        let mut h = String::new();
        reader.read_line(&mut h).unwrap();
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        let (k, v) = h.split_once(':').unwrap();
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_owned()));
    }
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v == "chunked");
    let mut body = Vec::new();
    if chunked {
        loop {
            let mut size_line = String::new();
            reader.read_line(&mut size_line).unwrap();
            let size = usize::from_str_radix(size_line.trim(), 16).unwrap();
            let mut chunk = vec![0u8; size + 2]; // data + CRLF
            reader.read_exact(&mut chunk).unwrap();
            if size == 0 {
                break;
            }
            body.extend_from_slice(&chunk[..size]);
        }
    } else if let Some(len) = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        body = vec![0u8; len];
        reader.read_exact(&mut body).unwrap();
    }
    Response {
        status,
        headers,
        body,
    }
}

/// One-shot request on a fresh connection (`Connection: close`).
fn roundtrip(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    read_response(&mut BufReader::new(stream))
}

fn post(addr: SocketAddr, path: &str, fields: Vec<(&str, Json)>) -> Response {
    roundtrip(addr, "POST", path, &json::obj(fields).render())
}

#[test]
fn endpoints_agree_with_the_library() {
    let server = boot(|_| {});
    let addr = server.addr();

    let health = roundtrip(addr, "GET", "/healthz", "");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, b"ok\n");

    // is_solution: a real witness verifies, a junk graph does not.
    let mut lib = library_session();
    let witness = match lib.solution_exists().unwrap() {
        // The library names nulls `~N`, which the edge-list grammar
        // does not accept back; re-name them (`is_solution` is
        // invariant under null renaming).
        Existence::Exists(g) => g.to_string().replace("_~", "_n"),
        other => panic!("expected Exists, got {other:?}"),
    };
    let yes = post(addr, "/v1/is_solution", vec![("graph", json::s(&*witness))]);
    assert_eq!(yes.status, 200, "{:?}", String::from_utf8_lossy(&yes.body));
    assert_eq!(
        yes.json().get("solution").and_then(Json::as_bool),
        Some(true)
    );
    let no = post(
        addr,
        "/v1/is_solution",
        vec![("graph", json::s("(zz, f, qq);"))],
    );
    assert_eq!(
        no.json().get("solution").and_then(Json::as_bool),
        Some(false)
    );

    // certain: verdicts match the library.
    let certain = post(
        addr,
        "/v1/certain",
        vec![("query", json::s(r#"("c1", f.f*, "c2")"#))],
    );
    assert_eq!(
        certain.json().get("verdict").and_then(Json::as_str),
        Some("certain"),
        "{:?}",
        String::from_utf8_lossy(&certain.body)
    );
    let not = post(
        addr,
        "/v1/certain",
        vec![("query", json::s(r#"("zz1", f.f*, "zz2")"#))],
    );
    assert_eq!(
        not.json().get("verdict").and_then(Json::as_str),
        Some("not_certain")
    );
    assert!(not.json().get("counterexample").is_some());

    // certain_answers: JSON and binary agree with the library rows.
    let query = PreparedQuery::parse("(x, f.f*, y)").unwrap();
    let (lib_rows, lib_exact) = lib.certain_answers(&query).unwrap();
    let expect: Vec<Vec<String>> = lib_rows
        .iter()
        .map(|r| r.iter().map(|n| n.name().as_str().to_owned()).collect())
        .collect();
    let ans = post(
        addr,
        "/v1/certain_answers",
        vec![("query", json::s("(x, f.f*, y)"))],
    );
    assert_eq!(ans.status, 200);
    let got: Vec<Vec<String>> = ans
        .json()
        .get("rows")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|row| {
            row.as_array()
                .unwrap()
                .iter()
                .map(|c| c.as_str().unwrap().to_owned())
                .collect()
        })
        .collect();
    assert_eq!(got, expect);
    assert_eq!(
        ans.json().get("exact").and_then(Json::as_bool),
        Some(lib_exact)
    );
    let bin = post(
        addr,
        "/v1/certain_answers",
        vec![
            ("query", json::s("(x, f.f*, y)")),
            ("format", json::s("binary")),
        ],
    );
    assert_eq!(bin.header("content-type"), Some("application/x-gdx-rows"));
    assert_eq!(wire::decode_rows(&bin.body).unwrap(), (expect, lib_exact));

    // solutions: streamed family matches the library's.
    let lib_count = library_session().solutions().unwrap().fold(0, |acc, g| {
        g.unwrap();
        acc + 1
    });
    let stream = post(addr, "/v1/solutions", Vec::new());
    assert_eq!(stream.status, 200);
    assert_eq!(stream.header("transfer-encoding"), Some("chunked"));
    let lines: Vec<Json> = std::str::from_utf8(&stream.body)
        .unwrap()
        .lines()
        .map(|l| json::parse(l).unwrap())
        .collect();
    let (solutions, summary) = lines.split_at(lines.len() - 1);
    assert_eq!(solutions.len(), lib_count);
    assert!(solutions.iter().all(|l| l.get("solution").is_some()));
    assert_eq!(summary[0].get("done").and_then(Json::as_bool), Some(true));
    assert_eq!(summary[0].get_u64("count"), Some(lib_count as u64));

    // A limited stream stops early and still terminates cleanly.
    let limited = post(addr, "/v1/solutions", vec![("limit", json::n(1))]);
    let limited_lines: Vec<&str> = std::str::from_utf8(&limited.body)
        .unwrap()
        .lines()
        .collect();
    assert_eq!(limited_lines.len(), 2, "{limited_lines:?}");

    server.stop();
}

#[test]
fn protocol_errors_are_typed() {
    let server = boot(|_| {});
    let addr = server.addr();

    assert_eq!(roundtrip(addr, "GET", "/nope", "").status, 404);
    assert_eq!(roundtrip(addr, "GET", "/v1/certain", "").status, 405);
    assert_eq!(
        roundtrip(addr, "POST", "/v1/certain", "{not json").status,
        400
    );
    assert_eq!(
        post(addr, "/v1/certain", vec![("query", json::s("(x, f*"))]).status,
        400,
        "query parse errors are the client's fault"
    );
    assert_eq!(
        post(addr, "/v1/certain", Vec::new()).status,
        400,
        "missing query"
    );
    assert_eq!(
        post(
            addr,
            "/v1/certain",
            vec![
                ("query", json::s(r#"("c1", f.f*, "c2")"#)),
                ("options", json::obj(vec![("typo_knob", json::n(3))])),
            ],
        )
        .status,
        400,
        "unknown options must not silently run with defaults"
    );

    // A malformed request line gets 400 and a close.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"garbage\r\n\r\n").unwrap();
    let got = read_response(&mut BufReader::new(stream));
    assert_eq!(got.status, 400);

    // An oversized declared body is shed before it is buffered.
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "POST /v1/certain HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n"
    )
    .unwrap();
    let got = read_response(&mut BufReader::new(stream));
    assert_eq!(got.status, 413);

    // No default setting and none in the request: a clean 400.
    let bare = {
        let mut config = ServerConfig::new("127.0.0.1:0");
        config.obs = noop_obs();
        serve(config).unwrap()
    };
    let got = post(
        bare.addr(),
        "/v1/certain",
        vec![("query", json::s(r#"("c1", f.f*, "c2")"#))],
    );
    assert_eq!(got.status, 400);
    assert!(
        String::from_utf8_lossy(&got.body).contains("setting"),
        "{:?}",
        String::from_utf8_lossy(&got.body)
    );
    bare.stop();
    server.stop();
}

#[test]
fn metrics_dumps_are_byte_stable() {
    let server = boot(|_| {});
    let addr = server.addr();
    // Drive traffic so the registry is non-trivial.
    for _ in 0..2 {
        post(
            addr,
            "/v1/certain",
            vec![("query", json::s(r#"("c1", f.f*, "c2")"#))],
        );
    }
    // All four dumps ride one keep-alive connection: a fresh connection
    // per dump would bump `server.connections` between them, which is
    // real traffic, not dump nondeterminism.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut get = |path: &str| {
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n"
        )
        .unwrap();
        read_response(&mut reader)
    };
    let a = get("/metrics");
    let b = get("/metrics");
    assert_eq!(a.status, 200);
    assert!(!a.body.is_empty());
    assert_eq!(
        a.body, b.body,
        "sequential dumps with no traffic in between must be byte-identical"
    );
    let aj = get("/metrics?format=json");
    let bj = get("/metrics?format=json");
    assert_eq!(aj.body, bj.body);
    json::parse(std::str::from_utf8(&aj.body).unwrap()).unwrap();
    assert!(
        String::from_utf8_lossy(&a.body).contains("server.certain.requests"),
        "{}",
        String::from_utf8_lossy(&a.body)
    );
    assert_eq!(
        roundtrip(addr, "GET", "/metrics?format=xml", "").status,
        400
    );
    server.stop();
}

#[test]
fn keep_alive_serves_sequential_requests() {
    let server = boot(|_| {});
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let body = json::obj(vec![("query", json::s(r#"("c1", f.f*, "c2")"#))]).render();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut first_bytes = None;
    for _ in 0..2 {
        write!(
            stream,
            "POST /v1/certain HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let got = read_response(&mut reader);
        assert_eq!(got.status, 200);
        match &first_bytes {
            None => first_bytes = Some(got.body.clone()),
            Some(prev) => assert_eq!(
                prev, &got.body,
                "a warm repeat on the same connection must be byte-identical"
            ),
        }
    }
    server.stop();
}

#[test]
fn overload_sheds_with_429_and_retry_after() {
    let server = boot(|c| {
        c.workers = 1;
        c.queue_depth = 1;
    });
    let addr = server.addr();
    // Occupy the single worker, then the single queue slot, with idle
    // connections (the worker blocks reading their first request).
    let _holder_worker = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    let _holder_queue = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    let got = roundtrip(addr, "GET", "/healthz", "");
    assert_eq!(got.status, 429);
    assert_eq!(got.header("retry-after"), Some("1"));
    assert!(String::from_utf8_lossy(&got.body).contains("overloaded"));
    // Freeing the holders restores service.
    drop(_holder_worker);
    drop(_holder_queue);
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(roundtrip(addr, "GET", "/healthz", "").status, 200);
    server.stop();
}

/// Every read advances virtual time, so any per-request budget expires
/// at the first between-candidates check — deterministic deadline
/// testing without real sleeps.
#[derive(Debug, Default)]
struct TickingClock(AtomicU64);

impl Clock for TickingClock {
    fn now_micros(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }
}

#[test]
fn deadlines_degrade_to_inexact_and_resume_on_the_warm_session() {
    let server = boot(|c| {
        c.obs = Obs::with_clock(Arc::new(TickingClock::default()));
    });
    let addr = server.addr();
    let budgeted = post(
        addr,
        "/v1/certain_answers",
        vec![
            ("query", json::s("(x, f.f*, y)")),
            ("deadline_ms", json::n(0)),
        ],
    );
    assert_eq!(budgeted.status, 200);
    assert_eq!(
        budgeted.json().get("exact").and_then(Json::as_bool),
        Some(false),
        "a spent budget must withdraw exactness: {}",
        String::from_utf8_lossy(&budgeted.body)
    );
    // Same warm session, no budget: the enumeration resumes and the
    // answers match the library.
    let full = post(
        addr,
        "/v1/certain_answers",
        vec![("query", json::s("(x, f.f*, y)"))],
    );
    let query = PreparedQuery::parse("(x, f.f*, y)").unwrap();
    let (lib_rows, lib_exact) = library_session().certain_answers(&query).unwrap();
    let expect: Vec<Vec<String>> = lib_rows
        .iter()
        .map(|r| r.iter().map(|n| n.name().as_str().to_owned()).collect())
        .collect();
    let got: Vec<Vec<String>> = full
        .json()
        .get("rows")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|row| {
            row.as_array()
                .unwrap()
                .iter()
                .map(|c| c.as_str().unwrap().to_owned())
                .collect()
        })
        .collect();
    assert_eq!(got, expect);
    assert_eq!(
        full.json().get("exact").and_then(Json::as_bool),
        Some(lib_exact)
    );
    // A budgeted definite verdict stays definite: the counterexample
    // pool survives the pause.
    let not = post(
        addr,
        "/v1/certain",
        vec![
            ("query", json::s(r#"("zz1", f.f*, "zz2")"#)),
            ("deadline_ms", json::n(0)),
        ],
    );
    assert_eq!(
        not.json().get("verdict").and_then(Json::as_str),
        Some("not_certain"),
        "{}",
        String::from_utf8_lossy(&not.body)
    );
    server.stop();
}
