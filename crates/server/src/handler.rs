//! Request dispatch: a pure `(ServerState, Request) → response bytes`
//! mapping, fully testable without a socket.
//!
//! Everything deterministic about the server lives here. Responses
//! carry no timestamps and no per-connection state, so the same request
//! against the same state serializes to the same bytes at any worker
//! count — `tests/parallel_determinism.rs` pins that end to end.
//!
//! `GET /metrics` and `GET /healthz` are deliberately *not* recorded in
//! the metrics they expose: two sequential dumps with no traffic in
//! between are byte-identical (pinned by the e2e tests).

use crate::http::{self, Request};
use crate::pool::{SessionKey, SessionPool};
use crate::wire;
use crate::ServerConfig;
use gdx_common::json::{self, Json};
use gdx_common::GdxError;
use gdx_exchange::{CertainAnswer, ExchangeSession, Options};
use gdx_graph::Graph;
use gdx_query::{PlannerMode, PreparedQuery};
use gdx_runtime::Threads;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// Shared, immutable-per-boot server state: configuration plus the
/// warm-session pool. One value, shared by every worker.
pub struct ServerState {
    pub config: ServerConfig,
    pub pool: SessionPool,
}

impl ServerState {
    pub fn new(config: ServerConfig) -> ServerState {
        let pool = SessionPool::new(config.max_sessions, config.obs.clone());
        ServerState { config, pool }
    }

    /// The shared observability handle.
    pub fn obs(&self) -> &gdx_obs::Obs {
        &self.config.obs
    }
}

/// Routes one parsed request and writes a complete HTTP response (fixed
/// or chunked) to `out`. `Err` only for transport failures on `out`.
pub fn handle(state: &ServerState, req: &Request, out: &mut dyn Write) -> io::Result<()> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => http::write_response(out, 200, "text/plain", &[], b"ok\n"),
        ("GET", "/metrics") => metrics(state, req, out),
        ("POST", "/v1/is_solution") => timed(state, &IS_SOLUTION, req, out, is_solution),
        ("POST", "/v1/certain") => timed(state, &CERTAIN, req, out, certain),
        ("POST", "/v1/certain_answers") => {
            timed(state, &CERTAIN_ANSWERS, req, out, certain_answers)
        }
        ("POST", "/v1/solutions") => timed(state, &SOLUTIONS, req, out, solutions),
        (
            _,
            "/healthz"
            | "/metrics"
            | "/v1/is_solution"
            | "/v1/certain"
            | "/v1/certain_answers"
            | "/v1/solutions",
        ) => http::write_response(
            out,
            405,
            "application/json",
            &[],
            &wire::error_body("method not allowed"),
        ),
        _ => http::write_response(
            out,
            404,
            "application/json",
            &[],
            &wire::error_body("no such endpoint"),
        ),
    }
}

/// Static metric names for one endpoint (`gdx-obs` names are
/// `&'static str` by contract).
struct Endpoint {
    span: &'static str,
    requests: &'static str,
    errors: &'static str,
    latency_us: &'static str,
}

const IS_SOLUTION: Endpoint = Endpoint {
    span: "server.is_solution",
    requests: "server.is_solution.requests",
    errors: "server.is_solution.errors",
    latency_us: "server.is_solution.latency_us",
};
const CERTAIN: Endpoint = Endpoint {
    span: "server.certain",
    requests: "server.certain.requests",
    errors: "server.certain.errors",
    latency_us: "server.certain.latency_us",
};
const CERTAIN_ANSWERS: Endpoint = Endpoint {
    span: "server.certain_answers",
    requests: "server.certain_answers.requests",
    errors: "server.certain_answers.errors",
    latency_us: "server.certain_answers.latency_us",
};
const SOLUTIONS: Endpoint = Endpoint {
    span: "server.solutions",
    requests: "server.solutions.requests",
    errors: "server.solutions.errors",
    latency_us: "server.solutions.latency_us",
};

/// Counts, times and spans an endpoint call around `f` (which writes
/// the full response and reports the status it chose).
fn timed(
    state: &ServerState,
    ep: &Endpoint,
    req: &Request,
    out: &mut dyn Write,
    f: fn(&ServerState, &Request, &mut dyn Write) -> io::Result<u16>,
) -> io::Result<()> {
    let obs = state.obs();
    let start = obs.now_micros();
    let status = {
        let _span = obs.span(ep.span);
        obs.incr(ep.requests);
        f(state, req, out)?
    };
    if status >= 400 {
        obs.incr(ep.errors);
    }
    obs.observe(ep.latency_us, obs.now_micros().saturating_sub(start));
    Ok(())
}

fn metrics(state: &ServerState, req: &Request, out: &mut dyn Write) -> io::Result<()> {
    let obs = state.obs();
    match req.query_param("format") {
        Some("json") => http::write_response(
            out,
            200,
            "application/json",
            &[],
            obs.render_metrics_json().as_bytes(),
        ),
        None | Some("text") => http::write_response(
            out,
            200,
            "text/plain",
            &[],
            obs.render_metrics_text().as_bytes(),
        ),
        Some(other) => http::write_response(
            out,
            400,
            "application/json",
            &[],
            &wire::error_body(&format!("unknown metrics format {other:?}")),
        ),
    }
}

/// A handler-level failure: HTTP status + message.
struct ApiError {
    status: u16,
    msg: String,
}

fn bad(msg: impl Into<String>) -> ApiError {
    ApiError {
        status: 400,
        msg: msg.into(),
    }
}

impl From<GdxError> for ApiError {
    fn from(e: GdxError) -> ApiError {
        let status = match e {
            // The request itself was unacceptable.
            GdxError::Parse { .. } | GdxError::Schema(_) | GdxError::Unsupported(_) => 400,
            // The server could not complete an acceptable request.
            GdxError::LimitExceeded(_) | GdxError::Internal(_) => 500,
        };
        ApiError {
            status,
            msg: e.to_string(),
        }
    }
}

/// Everything a solver endpoint needs: the (possibly pooled) session
/// and the parsed request body.
struct Prepared {
    session: Arc<Mutex<ExchangeSession>>,
    deadline_micros: Option<u64>,
    body: Json,
}

/// Parses the body, resolves setting/instance/options against the
/// server defaults and checks the session out of the pool.
fn prepare(state: &ServerState, req: &Request) -> Result<Prepared, ApiError> {
    let text = std::str::from_utf8(&req.body).map_err(|_| bad("body is not UTF-8"))?;
    let body = if text.trim().is_empty() {
        Json::Object(Vec::new())
    } else {
        json::parse(text).map_err(|e| bad(format!("body is not valid JSON: {e}")))?
    };
    if !matches!(body, Json::Object(_)) {
        return Err(bad("body must be a JSON object"));
    }
    let field_text = |name: &str, default: &Option<Arc<str>>| -> Result<Arc<str>, ApiError> {
        match body.get(name) {
            Some(Json::String(s)) => Ok(Arc::from(s.as_str())),
            Some(_) => Err(bad(format!("\"{name}\" must be a string"))),
            None => default.clone().ok_or_else(|| {
                bad(format!(
                    "no \"{name}\" in the request and no server default"
                ))
            }),
        }
    };
    let setting = field_text("setting", &state.config.default_setting)?;
    let instance = field_text("instance", &state.config.default_instance)?;
    let options = parse_options(state.config.base_options, body.get("options"))?;
    let deadline_micros = match body.get("deadline_ms") {
        None => state.config.default_deadline_micros,
        Some(v) => Some(
            v.as_f64()
                .filter(|ms| *ms >= 0.0 && ms.fract() == 0.0)
                .map(|ms| (ms as u64).saturating_mul(1000))
                .ok_or_else(|| bad("\"deadline_ms\" must be a non-negative integer"))?,
        ),
    };
    let key = SessionKey::new(setting.clone(), instance.clone(), &options);
    let session = state.pool.checkout(&key, || {
        let parsed = gdx_mapping::dsl::parse_setting(&setting)?;
        let inst = gdx_relational::Instance::parse(parsed.source.clone(), &instance)?;
        Ok(ExchangeSession::new(parsed, inst)
            .with_options(options.with_deadline_micros(None))
            .with_obs(state.obs().clone()))
    })?;
    Ok(Prepared {
        session,
        deadline_micros,
        body,
    })
}

/// Layers the request's `"options"` object over the server's base
/// options. Unknown keys are rejected — a typo must not silently run
/// with defaults.
fn parse_options(base: Options, spec: Option<&Json>) -> Result<Options, ApiError> {
    let mut options = base;
    let Some(spec) = spec else {
        return Ok(options);
    };
    let Json::Object(fields) = spec else {
        return Err(bad("\"options\" must be an object"));
    };
    let as_count = |key: &str, v: &Json| -> Result<usize, ApiError> {
        v.as_f64()
            .filter(|x| *x >= 0.0 && x.fract() == 0.0)
            .map(|x| x as usize)
            .ok_or_else(|| bad(format!("options.{key} must be a non-negative integer")))
    };
    for (key, value) in fields {
        match key.as_str() {
            "max_graphs" => options.instantiation.max_graphs = as_count(key, value)?,
            "row_limit" => options.row_limit = Some(as_count(key, value)?),
            "solution_cap" => options.solution_cap = Some(as_count(key, value)?),
            "threads" => options.threads = Threads::Fixed(as_count(key, value)?),
            "planner" => {
                options.planner = match value.as_str() {
                    Some("auto") => PlannerMode::Auto,
                    Some("materialize") => PlannerMode::Materialize,
                    _ => return Err(bad("options.planner must be \"auto\" or \"materialize\"")),
                }
            }
            other => return Err(bad(format!("unknown option {other:?}"))),
        }
    }
    Ok(options)
}

/// Writes a fixed JSON (or binary) response for `result`, returning the
/// status for the metrics layer.
fn respond(
    out: &mut dyn Write,
    result: Result<(&'static str, Vec<u8>), ApiError>,
) -> io::Result<u16> {
    match result {
        Ok((content_type, body)) => {
            http::write_response(out, 200, content_type, &[], &body)?;
            Ok(200)
        }
        Err(e) => {
            http::write_response(
                out,
                e.status,
                "application/json",
                &[],
                &wire::error_body(&e.msg),
            )?;
            Ok(e.status)
        }
    }
}

fn lock_session(p: &Prepared) -> std::sync::MutexGuard<'_, ExchangeSession> {
    let mut session = p.session.lock().unwrap_or_else(|e| e.into_inner());
    session.set_deadline(p.deadline_micros);
    session
}

fn is_solution(state: &ServerState, req: &Request, out: &mut dyn Write) -> io::Result<u16> {
    let result = (|| {
        let p = prepare(state, req)?;
        let graph_text = p
            .body
            .get("graph")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("\"graph\" (string) is required"))?;
        let graph = Graph::parse(graph_text).map_err(ApiError::from)?;
        let verdict = lock_session(&p).is_solution(&graph)?;
        let body = json::obj(vec![("solution", Json::Bool(verdict))]).render();
        Ok(("application/json", body.into_bytes()))
    })();
    respond(out, result)
}

fn certain(state: &ServerState, req: &Request, out: &mut dyn Write) -> io::Result<u16> {
    let result = (|| {
        let p = prepare(state, req)?;
        let query = parse_query(&p.body)?;
        let verdict = lock_session(&p).certain(&query)?;
        let fields = match verdict {
            CertainAnswer::Certain => vec![("verdict", json::s("certain"))],
            CertainAnswer::NotCertain(g) => vec![
                ("verdict", json::s("not_certain")),
                ("counterexample", json::s(g.to_string())),
            ],
            CertainAnswer::Unknown(reason) => {
                vec![("verdict", json::s("unknown")), ("reason", json::s(reason))]
            }
        };
        Ok(("application/json", json::obj(fields).render().into_bytes()))
    })();
    respond(out, result)
}

fn certain_answers(state: &ServerState, req: &Request, out: &mut dyn Write) -> io::Result<u16> {
    let result = (|| {
        let p = prepare(state, req)?;
        let query = parse_query(&p.body)?;
        let binary = match p.body.get("format").and_then(Json::as_str) {
            None | Some("json") => false,
            Some("binary") => true,
            Some(other) => return Err(bad(format!("unknown format {other:?}"))),
        };
        let (rows, exact) = lock_session(&p).certain_answers(&query)?;
        let rendered: Vec<Vec<String>> = rows
            .iter()
            .map(|row| row.iter().map(|n| n.name().as_str().to_owned()).collect())
            .collect();
        if binary {
            return Ok((
                "application/x-gdx-rows",
                wire::encode_rows(&rendered, exact),
            ));
        }
        let body = json::obj(vec![
            (
                "rows",
                Json::Array(
                    rendered
                        .into_iter()
                        .map(|row| Json::Array(row.into_iter().map(Json::String).collect()))
                        .collect(),
                ),
            ),
            ("exact", Json::Bool(exact)),
        ]);
        Ok(("application/json", body.render().into_bytes()))
    })();
    respond(out, result)
}

/// Streams the minimal-solution family as newline-delimited JSON, one
/// solution per HTTP chunk, riding the lazy `SolutionStream`: the first
/// solution reaches the socket before the last is enumerated. Ends with
/// a `{"done": …}` summary line carrying the exactness verdict.
fn solutions(state: &ServerState, req: &Request, out: &mut dyn Write) -> io::Result<u16> {
    let p = match prepare(state, req) {
        Ok(p) => p,
        Err(e) => return respond(out, Err(e)),
    };
    let limit = match p.body.get("limit") {
        None => usize::MAX,
        Some(v) => match v.as_f64().filter(|x| *x >= 0.0 && x.fract() == 0.0) {
            Some(x) => x as usize,
            None => return respond(out, Err(bad("\"limit\" must be a non-negative integer"))),
        },
    };
    let mut session = lock_session(&p);
    let mut stream = match session.solutions() {
        Ok(s) => s,
        Err(e) => return respond(out, Err(ApiError::from(e))),
    };
    // Committed to 200 from here: errors mid-stream become a trailing
    // `{"error": …}` line — the chunked framing still terminates
    // cleanly, and the client knows the stream is incomplete because
    // the `done` summary is missing.
    http::start_chunked(out, 200, "application/x-ndjson")?;
    let mut count: u64 = 0;
    let mut failed = false;
    while count < limit as u64 {
        match stream.next() {
            Some(Ok(g)) => {
                count += 1;
                let line = json::obj(vec![("solution", json::s(g.to_string()))]).render();
                http::write_chunk(out, format!("{line}\n").as_bytes())?;
            }
            Some(Err(e)) => {
                let line = json::obj(vec![("error", json::s(e.to_string()))]).render();
                http::write_chunk(out, format!("{line}\n").as_bytes())?;
                failed = true;
                break;
            }
            None => break,
        }
    }
    if !failed {
        let summary = json::obj(vec![
            ("done", Json::Bool(true)),
            ("count", json::n(count)),
            ("exact", Json::Bool(stream.exact())),
        ])
        .render();
        http::write_chunk(out, format!("{summary}\n").as_bytes())?;
    }
    finish_stream(out)?;
    Ok(if failed { 500 } else { 200 })
}

fn finish_stream(out: &mut dyn Write) -> io::Result<()> {
    http::finish_chunked(out)
}

fn parse_query(body: &Json) -> Result<PreparedQuery, ApiError> {
    let text = body
        .get("query")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("\"query\" (string) is required"))?;
    PreparedQuery::parse(text).map_err(ApiError::from)
}
