//! Wire-level HTTP/1.1, hand-rolled over `std::io`.
//!
//! The subset this server speaks: request line + headers + optional
//! `Content-Length` body in; status line + headers + fixed or
//! `chunked` body out. No TLS, no compression, no `Transfer-Encoding`
//! on the request side — callers that need more are outside this
//! reproduction's scope. Everything is bounded: oversized request
//! heads and bodies are rejected before they are buffered.

use std::io::{self, BufRead, Write};

/// Hard cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on a request body.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request. Header names are lower-cased at parse time;
/// values keep their bytes (trimmed).
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path without the query string, e.g. `/v1/certain_answers`.
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a (lower-cased) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query-string key.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Did the client ask to drop the connection after this exchange?
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Outcome of reading one request off a connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, well-formed request.
    Request(Request),
    /// The peer closed the connection before a request line arrived —
    /// the normal end of a keep-alive connection.
    Closed,
    /// Malformed input; respond `400` and close.
    Bad(String),
    /// Head or body over the hard caps; respond `413` and close.
    TooLarge,
}

/// Reads one HTTP/1.1 request. `Err` is a transport error (including
/// read timeouts), after which the connection is unusable.
pub fn read_request(reader: &mut impl BufRead) -> io::Result<ReadOutcome> {
    let mut head = Vec::new();
    // Read up to the blank line ending the head, bounded.
    loop {
        let mut line = Vec::new();
        let n = read_line_bounded(reader, &mut line, MAX_HEAD_BYTES)?;
        if n == 0 {
            return Ok(if head.is_empty() {
                ReadOutcome::Closed
            } else {
                ReadOutcome::Bad("connection closed mid-head".to_owned())
            });
        }
        if line == b"\r\n" || line == b"\n" {
            if head.is_empty() {
                // Tolerate leading blank lines per RFC 9112 §2.2.
                continue;
            }
            break;
        }
        head.extend_from_slice(&line);
        if head.len() > MAX_HEAD_BYTES {
            return Ok(ReadOutcome::TooLarge);
        }
    }
    let head = match std::str::from_utf8(&head) {
        Ok(s) => s,
        Err(_) => return Ok(ReadOutcome::Bad("request head is not UTF-8".to_owned())),
    };
    let mut lines = head.lines();
    let Some(request_line) = lines.next() else {
        return Ok(ReadOutcome::Bad("empty request head".to_owned()));
    };
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(ReadOutcome::Bad(format!(
            "malformed request line: {request_line:?}"
        )));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Ok(ReadOutcome::Bad(format!(
            "malformed request line: {request_line:?}"
        )));
    }
    let (path, query) = parse_target(target);
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Ok(ReadOutcome::Bad(format!("malformed header: {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let mut body = Vec::new();
    if let Some(len) = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.as_str())
    {
        let Ok(len) = len.parse::<usize>() else {
            return Ok(ReadOutcome::Bad(format!("bad content-length: {len:?}")));
        };
        if len > MAX_BODY_BYTES {
            return Ok(ReadOutcome::TooLarge);
        }
        body.resize(len, 0);
        reader.read_exact(&mut body)?;
    }
    Ok(ReadOutcome::Request(Request {
        method: method.to_owned(),
        path,
        query,
        headers,
        body,
    }))
}

/// `\n`-terminated line, bounded; returns bytes read (0 on EOF).
fn read_line_bounded(
    reader: &mut impl BufRead,
    out: &mut Vec<u8>,
    cap: usize,
) -> io::Result<usize> {
    let mut one = [0u8; 1];
    let mut n = 0;
    loop {
        match reader.read(&mut one)? {
            0 => return Ok(n),
            _ => {
                n += 1;
                out.push(one[0]);
                if one[0] == b'\n' {
                    return Ok(n);
                }
                if n > cap {
                    // Caller maps an over-long line to TooLarge via the
                    // accumulated head length; stop feeding it.
                    return Ok(n);
                }
            }
        }
    }
}

/// Splits a request target into path and decoded query pairs.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, qs) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = qs
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    (percent_decode(path), query)
}

/// Minimal percent-decoding (plus `+` as space), lossy on bad escapes.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Canonical reason phrases for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length response. `extra` headers come after
/// the standard ones; none of the standard ones vary with time, so the
/// same request always serializes to the same bytes.
pub fn write_response(
    out: &mut dyn Write,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason(status),
        body.len()
    )?;
    for (k, v) in extra {
        write!(out, "{k}: {v}\r\n")?;
    }
    out.write_all(b"\r\n")?;
    out.write_all(body)
}

/// Starts a `Transfer-Encoding: chunked` response; follow with
/// [`write_chunk`] and [`finish_chunked`].
pub fn start_chunked(out: &mut dyn Write, status: u16, content_type: &str) -> io::Result<()> {
    write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\n\r\n",
        reason(status)
    )
}

/// One chunk (empty input is skipped — an empty chunk would terminate
/// the stream).
pub fn write_chunk(out: &mut dyn Write, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(out, "{:x}\r\n", data.len())?;
    out.write_all(data)?;
    out.write_all(b"\r\n")
}

/// Terminates a chunked response.
pub fn finish_chunked(out: &mut dyn Write) -> io::Result<()> {
    out.write_all(b"0\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read(bytes: &[u8]) -> ReadOutcome {
        read_request(&mut BufReader::new(bytes)).unwrap()
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw =
            b"POST /v1/certain?format=json HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        match read(raw) {
            ReadOutcome::Request(r) => {
                assert_eq!(r.method, "POST");
                assert_eq!(r.path, "/v1/certain");
                assert_eq!(r.query_param("format"), Some("json"));
                assert_eq!(r.header("host"), Some("x"));
                assert_eq!(r.body, b"body");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eof_before_a_request_is_a_clean_close() {
        assert!(matches!(read(b""), ReadOutcome::Closed));
    }

    #[test]
    fn garbage_is_bad_not_an_error() {
        assert!(matches!(read(b"not http\r\n\r\n"), ReadOutcome::Bad(_)));
        assert!(matches!(
            read(b"GET / HTTP/1.1\r\nno-colon-header\r\n\r\n"),
            ReadOutcome::Bad(_)
        ));
        assert!(matches!(
            read(b"GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            ReadOutcome::Bad(_)
        ));
    }

    #[test]
    fn oversized_declared_body_is_too_large() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(read(raw.as_bytes()), ReadOutcome::TooLarge));
    }

    #[test]
    fn fixed_response_bytes_are_deterministic() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_response(&mut a, 200, "application/json", &[], b"{}").unwrap();
        write_response(&mut b, 200, "application/json", &[], b"{}").unwrap();
        assert_eq!(a, b);
        let text = String::from_utf8(a).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
    }

    #[test]
    fn chunked_framing_round_trips() {
        let mut out = Vec::new();
        start_chunked(&mut out, 200, "application/x-ndjson").unwrap();
        write_chunk(&mut out, b"hello\n").unwrap();
        write_chunk(&mut out, b"").unwrap(); // skipped, not a terminator
        write_chunk(&mut out, b"world\n").unwrap();
        finish_chunked(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("6\r\nhello\n\r\n6\r\nworld\n\r\n0\r\n\r\n"),
            "{text}"
        );
    }

    #[test]
    fn percent_decoding_covers_the_query_string() {
        let (path, query) = parse_target("/a%20b?x=1+2&y=%2Fz&flag");
        assert_eq!(path, "/a b");
        assert_eq!(query[0], ("x".to_owned(), "1 2".to_owned()));
        assert_eq!(query[1], ("y".to_owned(), "/z".to_owned()));
        assert_eq!(query[2], ("flag".to_owned(), String::new()));
    }
}
