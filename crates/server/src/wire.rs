//! Response encodings: JSON helpers over [`gdx_common::json`] and the
//! compact binary certain-answer row format.
//!
//! ## Binary rows (`application/x-gdx-rows`)
//!
//! Bulk certain-answer consumers pay JSON escaping and quoting per
//! cell; the binary encoding is a flat length-prefixed layout instead
//! (all integers little-endian):
//!
//! ```text
//! magic   4 bytes  "GDXR"
//! version u8       1
//! flags   u8       bit0 = exact
//! arity   u16      cells per row
//! rows    u32      row count
//! cells   rows × arity × (u32 length + UTF-8 bytes), row-major
//! ```
//!
//! The encoding is self-delimiting, byte-deterministic (rows arrive
//! pre-sorted from
//! [`certain_answers`](gdx_exchange::ExchangeSession::certain_answers)),
//! and decodable without knowing the arity up front.

use gdx_common::json::Json;

/// Binary row-format magic.
pub const MAGIC: [u8; 4] = *b"GDXR";
/// Current binary row-format version.
pub const VERSION: u8 = 1;

/// Encodes sorted answer rows (cells already rendered to strings).
pub fn encode_rows(rows: &[Vec<String>], exact: bool) -> Vec<u8> {
    let arity = rows.first().map(Vec::len).unwrap_or(0);
    let cells: usize = rows.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(14 + cells * 8);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(u8::from(exact));
    out.extend_from_slice(&(arity as u16).to_le_bytes());
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for row in rows {
        for cell in row {
            out.extend_from_slice(&(cell.len() as u32).to_le_bytes());
            out.extend_from_slice(cell.as_bytes());
        }
    }
    out
}

/// Decodes the binary row format (the test/client side of
/// [`encode_rows`]).
pub fn decode_rows(bytes: &[u8]) -> Result<(Vec<Vec<String>>, bool), String> {
    let header = bytes.get(..12).ok_or("short header")?;
    if header[..4] != MAGIC {
        return Err("bad magic".to_owned());
    }
    if header[4] != VERSION {
        return Err(format!("unsupported version {}", header[4]));
    }
    let exact = header[5] & 1 == 1;
    let arity = u16::from_le_bytes([header[6], header[7]]) as usize;
    let count = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
    let mut at = 12;
    let mut rows = Vec::with_capacity(count);
    for _ in 0..count {
        let mut row = Vec::with_capacity(arity);
        for _ in 0..arity {
            let len_bytes = bytes.get(at..at + 4).ok_or("truncated cell length")?;
            let len = u32::from_le_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]])
                as usize;
            at += 4;
            let cell = bytes.get(at..at + len).ok_or("truncated cell")?;
            at += len;
            row.push(String::from_utf8(cell.to_vec()).map_err(|e| e.to_string())?);
        }
        rows.push(row);
    }
    if at != bytes.len() {
        return Err("trailing bytes after the last row".to_owned());
    }
    Ok((rows, exact))
}

/// `{"error": msg}` — the body shape of every non-200 JSON response.
pub fn error_body(msg: &str) -> Vec<u8> {
    Json::Object(vec![("error".to_owned(), Json::String(msg.to_owned()))])
        .render()
        .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_round_trip() {
        let rows = vec![
            vec!["c1".to_owned(), "c2".to_owned()],
            vec!["~0".to_owned(), "naïve".to_owned()],
        ];
        let bytes = encode_rows(&rows, true);
        assert_eq!(decode_rows(&bytes).unwrap(), (rows, true));
    }

    #[test]
    fn empty_set_round_trips_inexact() {
        let bytes = encode_rows(&[], false);
        assert_eq!(decode_rows(&bytes).unwrap(), (Vec::new(), false));
        assert_eq!(bytes.len(), 12);
    }

    #[test]
    fn corrupt_payloads_are_rejected() {
        assert!(decode_rows(b"GDXQ").is_err());
        let mut ok = encode_rows(&[vec!["x".to_owned()]], true);
        ok.truncate(ok.len() - 1);
        assert!(decode_rows(&ok).is_err());
        let mut extra = encode_rows(&[], true);
        extra.push(0);
        assert!(decode_rows(&extra).is_err());
    }
}
