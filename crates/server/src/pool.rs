//! The warm-session pool: an LRU map from request identity to a live
//! [`ExchangeSession`].
//!
//! A session is worth keeping because everything expensive about a
//! request is memoized *on* it: the parsed setting and instance, the
//! chased universal representative, the verified minimal-solution
//! family, per-graph evaluation caches, compiled probe queries. A pool
//! hit answers repeat traffic at evaluation cost only — the measured
//! warm/cold gap is the tentpole number of `bench_server`.
//!
//! Identity is the full `(setting text, instance text, options
//! fingerprint)` triple — texts compared by value, never by hash alone,
//! so two different workloads can never collide into one session. The
//! fingerprint deliberately excludes
//! [`Options::deadline_micros`](gdx_exchange::Options::deadline_micros):
//! the per-request budget is applied to the session *after* checkout
//! (via [`ExchangeSession::set_deadline`](gdx_exchange::ExchangeSession::set_deadline),
//! which does not invalidate memos), so requests that differ only in
//! budget share one warm session.
//!
//! Concurrency: the pool map is behind one mutex, each session behind
//! its own. Requests for *different* keys evaluate fully in parallel;
//! requests for the same key serialize on the session lock — which is
//! what makes its memoization sound. Lock poisoning is recovered with
//! [`PoisonError::into_inner`](std::sync::PoisonError::into_inner):
//! sessions hold no partially-applied
//! state across a panic boundary that a later request could observe
//! mid-flight (every mutation completes within a call).

use gdx_common::hash::FxHashMap;
use gdx_common::Result;
use gdx_exchange::{ExchangeSession, Options};
use gdx_obs::Obs;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Full-value request identity (see the module docs for why the
/// deadline is excluded).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SessionKey {
    setting: Arc<str>,
    instance: Arc<str>,
    options_fingerprint: String,
}

impl SessionKey {
    /// Key for a request; `options` is normalized (deadline stripped)
    /// before fingerprinting.
    pub fn new(setting: Arc<str>, instance: Arc<str>, options: &Options) -> SessionKey {
        let normalized = options.with_deadline_micros(None);
        SessionKey {
            setting,
            instance,
            // `Options` is a plain-data knob struct: its derived Debug
            // rendering covers every field, which makes it a faithful
            // (if verbose) equality fingerprint without requiring
            // Eq/Hash across all the embedded config types.
            options_fingerprint: format!("{normalized:?}"),
        }
    }

    /// The setting text this key was built from.
    pub fn setting(&self) -> &Arc<str> {
        &self.setting
    }

    /// The instance text this key was built from.
    pub fn instance(&self) -> &Arc<str> {
        &self.instance
    }
}

struct PoolInner {
    map: FxHashMap<SessionKey, Arc<Mutex<ExchangeSession>>>,
    /// Least-recently-used order, front = coldest. Touched keys move to
    /// the back; eviction pops the front.
    lru: VecDeque<SessionKey>,
}

/// LRU pool of warm sessions. `capacity == 0` disables pooling: every
/// checkout builds a fresh cold session (the bench baseline mode).
pub struct SessionPool {
    inner: Mutex<PoolInner>,
    capacity: usize,
    obs: Obs,
}

impl SessionPool {
    pub fn new(capacity: usize, obs: Obs) -> SessionPool {
        SessionPool {
            inner: Mutex::new(PoolInner {
                map: FxHashMap::default(),
                lru: VecDeque::new(),
            }),
            capacity,
            obs,
        }
    }

    /// The warm session for `key`, building (and caching) it on a miss
    /// via `build`. Eviction of the least-recently-used session happens
    /// before insertion, so the pool never exceeds `capacity`.
    pub fn checkout(
        &self,
        key: &SessionKey,
        build: impl FnOnce() -> Result<ExchangeSession>,
    ) -> Result<Arc<Mutex<ExchangeSession>>> {
        if self.capacity == 0 {
            self.obs.incr("server.pool.bypass");
            return Ok(Arc::new(Mutex::new(build()?)));
        }
        let _span = self.obs.span("server.pool.checkout");
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(session) = inner.map.get(key).cloned() {
            self.obs.incr("server.pool.hits");
            touch(&mut inner.lru, key);
            return Ok(session);
        }
        self.obs.incr("server.pool.misses");
        // Build under the pool lock: a concurrent same-key request
        // would otherwise build a duplicate session only to discard it
        // (and with it, the warmth the first request paid for).
        let session = Arc::new(Mutex::new(build()?));
        while inner.map.len() >= self.capacity {
            let Some(coldest) = inner.lru.pop_front() else {
                break;
            };
            inner.map.remove(&coldest);
            self.obs.incr("server.pool.evictions");
        }
        inner.map.insert(key.clone(), session.clone());
        inner.lru.push_back(key.clone());
        self.obs
            .gauge_set("server.pool.sessions", inner.map.len() as u64);
        Ok(session)
    }

    /// Number of pooled sessions right now.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Moves `key` to the most-recently-used end.
fn touch(lru: &mut VecDeque<SessionKey>, key: &SessionKey) {
    if let Some(pos) = lru.iter().position(|k| k == key) {
        if let Some(k) = lru.remove(pos) {
            lru.push_back(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SETTING: &str = "source { R/2 } target { f }
sttgd R(x, y) -> (x, f, y);";
    const INSTANCE: &str = "R(a, b);";

    fn build() -> Result<ExchangeSession> {
        let setting = gdx_mapping::dsl::parse_setting(SETTING)?;
        let instance = gdx_relational::Instance::parse(setting.source.clone(), INSTANCE)?;
        Ok(ExchangeSession::new(setting, instance))
    }

    fn key(tag: &str, options: &Options) -> SessionKey {
        SessionKey::new(Arc::from(SETTING), Arc::from(tag), options)
    }

    #[test]
    fn hit_returns_the_same_session() {
        let pool = SessionPool::new(4, Obs::disabled());
        let opts = Options::default();
        let a = pool.checkout(&key("i1", &opts), build).unwrap();
        let b = pool.checkout(&key("i1", &opts), build).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second checkout must be a pool hit");
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn deadline_does_not_split_the_key_but_other_options_do() {
        let base = Options::default();
        let budgeted = base.with_deadline_micros(Some(1000));
        assert_eq!(key("i1", &base), key("i1", &budgeted));
        let capped = Options {
            solution_cap: Some(3),
            ..base
        };
        assert_ne!(key("i1", &base), key("i1", &capped));
    }

    #[test]
    fn lru_evicts_the_coldest_session() {
        let pool = SessionPool::new(2, Obs::disabled());
        let opts = Options::default();
        let a = pool.checkout(&key("a", &opts), build).unwrap();
        let _b = pool.checkout(&key("b", &opts), build).unwrap();
        // Touch `a`, insert `c` — the coldest is now `b`.
        let a2 = pool.checkout(&key("a", &opts), build).unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        let _c = pool.checkout(&key("c", &opts), build).unwrap();
        assert_eq!(pool.len(), 2);
        let a3 = pool.checkout(&key("a", &opts), build).unwrap();
        assert!(Arc::ptr_eq(&a, &a3), "a must have survived the eviction");
        let b2 = pool.checkout(&key("b", &opts), build).unwrap();
        let b3 = pool.checkout(&key("b", &opts), build).unwrap();
        assert!(Arc::ptr_eq(&b2, &b3));
        assert!(pool.len() <= 2);
    }

    #[test]
    fn zero_capacity_bypasses_pooling() {
        let pool = SessionPool::new(0, Obs::disabled());
        let opts = Options::default();
        let a = pool.checkout(&key("i1", &opts), build).unwrap();
        let b = pool.checkout(&key("i1", &opts), build).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "bypass mode builds cold sessions");
        assert_eq!(pool.len(), 0);
    }
}
