//! The network edge: sockets, threads, the real clock.
//!
//! This is the **only** file in the workspace's library crates allowed
//! to spawn raw threads and construct a wall clock (the `gdx-lint`
//! `thread-spawn` / `clock-inject` carve-out, mirroring the one for
//! `gdx-obs/clock.rs`): everything behind [`handler::handle`] stays
//! deterministic and clock-free, and this file is the boundary that
//! injects time and concurrency into it.
//!
//! ## Shape
//!
//! One accept thread feeds a bounded queue of accepted connections; a
//! fixed pool of worker threads drains it, each serving keep-alive
//! connections to completion. Admission control happens at accept
//! time: when the queue already holds `queue_depth` connections, the
//! new one is answered `429 Too Many Requests` + `Retry-After: 1` and
//! closed — the server sheds load instead of queueing unboundedly.
//!
//! Shutdown: [`ServerHandle::stop`] raises a flag, wakes the accept
//! loop with a self-connection, nudges the workers off the queue
//! condvar, and joins everything. Workers observing the flag finish
//! their current connection first; idle keep-alive connections are cut
//! by the read timeout.

use crate::handler::{self, ServerState};
use crate::http::{self, ReadOutcome};
use crate::wire;
use crate::ServerConfig;
use gdx_obs::{MonotonicClock, Obs};
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Keep-alive connections idle longer than this are closed (also the
/// bound on worker-join latency at shutdown).
const IDLE_TIMEOUT: Duration = Duration::from_secs(2);
/// How often queue-waiting workers re-check the stop flag.
const STOP_POLL: Duration = Duration::from_millis(50);
/// How long [`reject_overload`] waits for a shed client's request bytes
/// while draining (bounds accept-loop stall per rejected connection).
const REJECT_DRAIN: Duration = Duration::from_millis(100);

/// An observability handle backed by the real monotonic clock — the
/// server's default time source (deadlines, latency histograms). The
/// one sanctioned construction site outside `gdx-obs` itself.
pub fn monotonic_obs() -> Obs {
    Obs::with_clock(Arc::new(MonotonicClock::new()))
}

/// Bounded hand-off between the accept loop and the workers.
struct Queue {
    inner: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

/// A running server: bound address, shared state, join handles.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    stop: Arc<AtomicBool>,
    queue: Arc<Queue>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves `:0` to the picked port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared server state (pool, config, obs) — lets embedders
    /// read metrics without a socket round-trip.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Graceful shutdown: stop accepting, drain workers, join.
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Blocks on the accept and worker threads — the foreground mode of
    /// the `gdx serve` binary. Returns only if the accept loop dies
    /// (e.g. the listener breaks), after which the workers are joined
    /// via the normal shutdown path.
    pub fn join(mut self) {
        if let Some(t) = self.accept.take() {
            drop(t.join());
        }
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop out of `accept()` with a throwaway
        // connection; it checks the flag before serving.
        drop(TcpStream::connect(self.addr));
        self.queue.ready.notify_all();
        if let Some(t) = self.accept.take() {
            drop(t.join());
        }
        for t in self.workers.drain(..) {
            drop(t.join());
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds, spawns the accept loop and `config.workers` workers, and
/// returns immediately. A `config.obs` left disabled is upgraded to a
/// [`monotonic_obs`] handle — inject a `NoopClock`-backed one instead
/// for byte-stable metrics output.
pub fn serve(config: ServerConfig) -> io::Result<ServerHandle> {
    let mut config = config;
    if !config.obs.is_enabled() {
        config.obs = monotonic_obs();
    }
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let worker_count = config.workers.max(1);
    let queue_depth = config.queue_depth.max(1);
    let state = Arc::new(ServerState::new(config));
    let stop = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(Queue {
        inner: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
    });
    let mut workers = Vec::with_capacity(worker_count);
    for _ in 0..worker_count {
        let (state, stop, queue) = (state.clone(), stop.clone(), queue.clone());
        workers.push(std::thread::spawn(move || {
            worker_loop(&state, &stop, &queue)
        }));
    }
    let accept = {
        let (state, stop, queue) = (state.clone(), stop.clone(), queue.clone());
        std::thread::spawn(move || accept_loop(&listener, &state, &stop, &queue, queue_depth))
    };
    Ok(ServerHandle {
        addr,
        state,
        stop,
        queue,
        accept: Some(accept),
        workers,
    })
}

fn accept_loop(
    listener: &TcpListener,
    state: &ServerState,
    stop: &AtomicBool,
    queue: &Queue,
    queue_depth: usize,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        state.obs().incr("server.connections");
        let mut pending = queue.inner.lock().unwrap_or_else(|e| e.into_inner());
        if pending.len() >= queue_depth {
            drop(pending);
            state.obs().incr("server.rejected_429");
            reject_overload(stream);
            continue;
        }
        pending.push_back(stream);
        drop(pending);
        queue.ready.notify_one();
    }
}

/// Answers `429` + `Retry-After` without parsing the request. After the
/// response, the write side is shut down (the client sees EOF at once)
/// and the request bytes are drained, bounded — closing with unread
/// data in the receive buffer would RST the connection and can discard
/// the in-flight `429` before the client reads it.
fn reject_overload(stream: TcpStream) {
    let mut out = BufWriter::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    drop(http::write_response(
        &mut out,
        429,
        "application/json",
        &[("Retry-After", "1"), ("Connection", "close")],
        &wire::error_body("server overloaded: admission queue is full"),
    ));
    drop(out.flush());
    drop(stream.shutdown(std::net::Shutdown::Write));
    if stream.set_read_timeout(Some(REJECT_DRAIN)).is_err() {
        return;
    }
    let mut sink = [0u8; 1024];
    let mut stream = stream;
    let mut drained = 0;
    while drained < http::MAX_HEAD_BYTES + http::MAX_BODY_BYTES {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => return,
            Ok(n) => drained += n,
        }
    }
}

fn worker_loop(state: &ServerState, stop: &AtomicBool, queue: &Queue) {
    loop {
        let stream = {
            let mut pending = queue.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(s) = pending.pop_front() {
                    break s;
                }
                let (guard, _timed_out) = queue
                    .ready
                    .wait_timeout(pending, STOP_POLL)
                    .unwrap_or_else(|e| e.into_inner());
                pending = guard;
            }
        };
        serve_connection(state, stream);
    }
}

/// Serves one keep-alive connection to completion: requests are read
/// and answered in order until the peer closes, asks to close, goes
/// idle past [`IDLE_TIMEOUT`], or sends something unusable.
fn serve_connection(state: &ServerState, stream: TcpStream) {
    if stream.set_read_timeout(Some(IDLE_TIMEOUT)).is_err() {
        return;
    }
    drop(stream.set_nodelay(true));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        match http::read_request(&mut reader) {
            Ok(ReadOutcome::Request(req)) => {
                let served = handler::handle(state, &req, &mut writer)
                    .and_then(|()| writer.flush())
                    .is_ok();
                if !served || req.wants_close() {
                    return;
                }
            }
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Bad(msg)) => {
                state.obs().incr("server.bad_requests");
                drop(
                    http::write_response(
                        &mut writer,
                        400,
                        "application/json",
                        &[("Connection", "close")],
                        &wire::error_body(&msg),
                    )
                    .and_then(|()| writer.flush()),
                );
                return;
            }
            Ok(ReadOutcome::TooLarge) => {
                state.obs().incr("server.bad_requests");
                drop(
                    http::write_response(
                        &mut writer,
                        413,
                        "application/json",
                        &[("Connection", "close")],
                        &wire::error_body("request exceeds the size limits"),
                    )
                    .and_then(|()| writer.flush()),
                );
                return;
            }
            // Transport error or idle timeout: the connection is done.
            Err(_) => return,
        }
    }
}
