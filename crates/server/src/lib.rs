//! # gdx-server
//!
//! A high-throughput network front end over warm
//! [`ExchangeSession`](gdx_exchange::ExchangeSession)s: a hand-rolled
//! HTTP/1.1 server (std-only — the workspace builds offline, so there is
//! no tokio/hyper to reach for) exposing the exchange stack's four
//! request shapes as endpoints:
//!
//! * `POST /v1/is_solution` — verify a candidate graph against the
//!   setting's constraints.
//! * `POST /v1/certain` — a Boolean certain-answer verdict
//!   (`certain` / `not_certain` / `unknown`).
//! * `POST /v1/certain_answers` — the full certain-answer set, as JSON
//!   rows or as the compact length-prefixed binary encoding
//!   ([`wire`]) for bulk consumers.
//! * `POST /v1/solutions` — the minimal-solution family, streamed one
//!   solution per HTTP chunk off the lazy
//!   [`SolutionStream`](gdx_exchange::SolutionStream), so the first
//!   solution leaves the socket before the last one is enumerated.
//!
//! Plus `GET /healthz` and `GET /metrics` (text or JSON renderings of
//! the shared [`gdx_obs`] registry).
//!
//! ## Architecture
//!
//! * [`http`] — wire-level HTTP/1.1: request parsing off a `BufRead`,
//!   response/chunked-transfer writing. No allocation-free heroics,
//!   just a strict, bounded, testable parser.
//! * [`wire`] — request/response JSON mapping (over
//!   [`gdx_common::json`]) and the binary certain-answer row encoding.
//! * [`pool`] — the LRU pool of warm sessions keyed by
//!   `(setting text, instance text, options fingerprint)`. A hit skips
//!   parsing, chasing and enumeration memos already paid for by an
//!   earlier request.
//! * [`handler`] — pure request → response-bytes mapping over a
//!   [`ServerState`]; everything deterministic lives here, fully
//!   testable without a socket.
//! * [`net`] — the only file that touches `TcpListener`, threads and
//!   the real clock (see the `gdx-lint` carve-out): accept loop,
//!   bounded admission queue (full ⇒ `429` + `Retry-After`), fixed
//!   worker pool, graceful shutdown.
//!
//! ## Budgets
//!
//! Each request may carry `deadline_ms`; the handler maps it onto
//! [`Options::deadline_micros`](gdx_exchange::Options::deadline_micros)
//! via [`ExchangeSession::set_deadline`](gdx_exchange::ExchangeSession::set_deadline)
//! — measured on the server's injected clock, enforced between
//! enumeration candidates, degrading results to `exact = false` /
//! `unknown` without ever flipping a definite verdict. Library crates
//! stay clock-free: the clock is constructed once, in [`net`].

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod handler;
pub mod http;
pub mod net;
pub mod pool;
pub mod wire;

pub use handler::{handle, ServerState};
pub use net::{monotonic_obs, serve, ServerHandle};
pub use pool::SessionPool;

use gdx_exchange::Options;
use gdx_obs::Obs;
use std::sync::Arc;

/// Everything a server needs to boot. Construct with
/// [`ServerConfig::new`] and override fields directly.
#[derive(Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port;
    /// read it back from [`ServerHandle::addr`]).
    pub addr: String,
    /// Connection-serving worker threads.
    pub workers: usize,
    /// Warm-session pool capacity. `0` disables pooling entirely: every
    /// request builds a cold session (the bench baseline).
    pub max_sessions: usize,
    /// Accepted connections waiting for a worker beyond those already
    /// being served. A full queue answers `429 Too Many Requests`.
    pub queue_depth: usize,
    /// Default per-request budget applied when a request does not carry
    /// its own `deadline_ms`. `None` = unbudgeted.
    pub default_deadline_micros: Option<u64>,
    /// Default mapping setting text used when a request omits
    /// `"setting"`.
    pub default_setting: Option<Arc<str>>,
    /// Default source-instance text used when a request omits
    /// `"instance"`.
    pub default_instance: Option<Arc<str>>,
    /// Base solver options; per-request `"options"` overrides layer on
    /// top of these.
    pub base_options: Options,
    /// Shared observability handle — the registry behind
    /// `GET /metrics`, and (via its clock) the deadline time source.
    /// [`net::serve`] defaults this to a `MonotonicClock`-backed handle
    /// when left disabled; inject a `NoopClock`/`VirtualClock` handle
    /// for byte-stable or simulated serving.
    pub obs: Obs,
}

impl ServerConfig {
    /// A config with production-ish defaults on `addr`.
    pub fn new(addr: impl Into<String>) -> ServerConfig {
        ServerConfig {
            addr: addr.into(),
            workers: 4,
            max_sessions: 64,
            queue_depth: 64,
            default_deadline_micros: None,
            default_setting: None,
            default_instance: None,
            base_options: Options::default(),
            obs: Obs::disabled(),
        }
    }
}
