//! Property-based tests for graph patterns: instantiation soundness
//! (`π → instantiate(π)` always holds), Rep monotonicity, and quotient
//! compatibility with homomorphisms.

use gdx_graph::Node;
use gdx_nre::ast::Nre;
use gdx_pattern::{
    find_pattern_homomorphism, instantiate_shortest, instantiation_family, represents,
    GraphPattern, InstantiationConfig,
};
use proptest::prelude::*;

fn arb_nre() -> impl Strategy<Value = Nre> {
    let leaf = prop_oneof![
        prop_oneof![Just("f"), Just("h")].prop_map(Nre::label),
        prop_oneof![Just("f"), Just("h")].prop_map(Nre::inverse),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Nre::Union(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Nre::Concat(Box::new(x), Box::new(y))),
            inner.clone().prop_map(|x| Nre::Star(Box::new(x))),
            inner.prop_map(|x| Nre::Test(Box::new(x))),
        ]
    })
}

fn arb_pattern() -> impl Strategy<Value = GraphPattern> {
    proptest::collection::vec((0u32..4, arb_nre(), 0u32..4), 1..5).prop_map(|edges| {
        let mut p = GraphPattern::new();
        let nodes: Vec<_> = (0..4)
            .map(|i| {
                if i < 2 {
                    p.add_node(Node::cst(&format!("k{i}")))
                } else {
                    p.add_node(Node::null(&format!("n{i}")))
                }
            })
            .collect();
        for (s, r, d) in edges {
            p.add_edge(nodes[s as usize], r, nodes[d as usize]);
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every canonical instantiation lies in Rep(π).
    #[test]
    fn instantiations_are_represented(p in arb_pattern()) {
        // Non-nullable edges only guaranteed realizable between distinct
        // constants; instantiate_shortest may legitimately fail when an
        // ε-only edge connects the two constants.
        if let Ok(g) = instantiate_shortest(&p) {
            prop_assert!(represents(&p, &g), "pattern:\n{}\ngraph:\n{}", p, g);
        }
        let cfg = InstantiationConfig {
            max_graphs: 8,
            ..InstantiationConfig::default()
        };
        if let Ok(family) = instantiation_family(&p, cfg) {
            for g in family {
                prop_assert!(represents(&p, &g));
            }
        }
    }

    /// Rep membership is monotone: adding edges to a represented graph
    /// keeps it represented.
    #[test]
    fn rep_monotone(p in arb_pattern()) {
        if let Ok(mut g) = instantiate_shortest(&p) {
            let a = g.add_const("fresh1");
            let b = g.add_const("fresh2");
            g.add_edge_labelled(a, "f", b);
            prop_assert!(represents(&p, &g));
        }
    }

    /// The homomorphism returned by the matcher actually satisfies every
    /// edge relation.
    #[test]
    fn returned_hom_is_valid(p in arb_pattern()) {
        if let Ok(g) = instantiate_shortest(&p) {
            let h = find_pattern_homomorphism(&p, &g).expect("represented");
            for (s, r, d) in p.edges() {
                prop_assert!(
                    gdx_nre::eval::holds(&g, r, h[s], h[d]),
                    "edge ({}, {}, {})", p.node(*s), r, p.node(*d)
                );
            }
            // Identity on constants.
            for id in p.node_ids() {
                let n = p.node(id);
                if n.is_const() {
                    prop_assert_eq!(g.node(h[&id]), n);
                }
            }
        }
    }

    /// Core retraction is minimal and preserves Rep in both directions.
    #[test]
    fn retract_core_preserves_rep(p in arb_pattern()) {
        let (core, _folds) = gdx_pattern::retract_core(&p);
        prop_assert!(gdx_pattern::is_retract_minimal(&core));
        prop_assert!(core.node_count() <= p.node_count());
        if let (Ok(gi), Ok(gc)) = (instantiate_shortest(&p), instantiate_shortest(&core)) {
            prop_assert!(represents(&core, &gi), "Rep(p) ⊆ Rep(core)");
            prop_assert!(represents(&p, &gc), "Rep(core) ⊆ Rep(p)");
        }
    }

    /// Quotienting nulls preserves instantiability-or-error (never panics)
    /// and never grows the pattern.
    #[test]
    fn quotient_null_merge(p in arb_pattern()) {
        let nulls: Vec<_> = p
            .node_ids()
            .filter(|&id| !p.node(id).is_const())
            .collect();
        if nulls.len() >= 2 {
            let (keep, drop) = (nulls[0], nulls[1]);
            let q = p.quotient(|id| if id == drop { keep } else { id });
            prop_assert!(q.node_count() < p.node_count());
            prop_assert!(q.edge_count() <= p.edge_count());
            let _ = instantiate_shortest(&q); // must not panic
        }
    }
}
