//! Pattern-to-graph homomorphisms: the semantics of `Rep_Σ(π)`.
//!
//! A homomorphism `h : π → G` is a total function on pattern nodes that is
//! the identity on constants (requirement 1 of the paper's Section 3.2)
//! and satisfies `(h(u), h(v)) ∈ ⟦r⟧_G` for every pattern edge `(u, r, v)`
//! (requirement 2).
//!
//! Deciding `π → G` is NP-complete in general; the search below is a
//! backtracking matcher with per-null candidate filtering (arc
//! consistency on unary projections of the edge relations), which is fast
//! on chase-produced patterns (few nulls, many constants).

use crate::pattern::{GraphPattern, PNodeId};
use gdx_common::{gallop, FxHashMap};
use gdx_graph::{Graph, NodeId};
use gdx_nre::eval::EvalCache;
use gdx_nre::BinRel;

/// Searches for a homomorphism `π → G`; returns the node map if one exists.
pub fn find_pattern_homomorphism(
    pattern: &GraphPattern,
    graph: &Graph,
) -> Option<FxHashMap<PNodeId, NodeId>> {
    let mut cache = EvalCache::new();
    // Materialize each distinct edge NRE once.
    let rels: Vec<BinRel> = pattern
        .edges()
        .iter()
        .map(|(_, r, _)| cache.eval(graph, r).clone())
        .collect();

    let mut assign: FxHashMap<PNodeId, NodeId> = FxHashMap::default();
    // Constants are forced (identity).
    for id in pattern.node_ids() {
        let node = pattern.node(id);
        if node.is_const() {
            assign.insert(id, graph.node_id(node)?);
        }
    }

    // Candidate sets for nulls: intersect unary projections of incident
    // edge relations. Projections come out sorted ascending (the flat
    // `BinRel` keys its adjacency arenas by dense node id), so the
    // intersection is a galloping merge over sorted slices instead of
    // hash-set intersection.
    let mut candidates: FxHashMap<PNodeId, Vec<NodeId>> = FxHashMap::default();
    for id in pattern.node_ids() {
        if pattern.node(id).is_const() {
            continue;
        }
        let mut cand: Option<Vec<NodeId>> = None;
        for (ei, (s, _, d)) in pattern.edges().iter().enumerate() {
            let filter: Option<Vec<NodeId>> = if *s == id && *d == id {
                let mut diag: Vec<NodeId> = rels[ei]
                    .iter()
                    .filter(|(u, v)| u == v)
                    .map(|(u, _)| u)
                    .collect();
                diag.sort_unstable();
                Some(diag)
            } else if *s == id {
                Some(rels[ei].domain().collect())
            } else if *d == id {
                Some(rels[ei].codomain().collect())
            } else {
                None
            };
            if let Some(f) = filter {
                cand = Some(match cand {
                    None => f,
                    Some(c) => {
                        let mut out = Vec::new();
                        gallop::intersect_sorted(&c, &f, &mut out);
                        out
                    }
                });
                if cand.as_ref().is_some_and(Vec::is_empty) {
                    return None;
                }
            }
        }
        let cand = cand.unwrap_or_else(|| graph.node_ids().collect());
        candidates.insert(id, cand);
    }

    // Early rejection on constant-constant edges.
    for (ei, (s, _, d)) in pattern.edges().iter().enumerate() {
        if let (Some(&hs), Some(&hd)) = (assign.get(s), assign.get(d)) {
            if !rels[ei].contains(hs, hd) {
                return None;
            }
        }
    }

    // Order nulls by candidate-set size (fail-first).
    let mut nulls: Vec<PNodeId> = pattern
        .node_ids()
        .filter(|id| !pattern.node(*id).is_const())
        .collect();
    nulls.sort_by_key(|id| candidates[id].len());

    if search(pattern, &rels, &nulls, 0, &candidates, &mut assign) {
        Some(assign)
    } else {
        None
    }
}

/// `G ∈ Rep_Σ(π)`?
pub fn represents(pattern: &GraphPattern, graph: &Graph) -> bool {
    find_pattern_homomorphism(pattern, graph).is_some()
}

fn search(
    pattern: &GraphPattern,
    rels: &[BinRel],
    nulls: &[PNodeId],
    depth: usize,
    candidates: &FxHashMap<PNodeId, Vec<NodeId>>,
    assign: &mut FxHashMap<PNodeId, NodeId>,
) -> bool {
    if depth == nulls.len() {
        return true;
    }
    let u = nulls[depth];
    for &cand in &candidates[&u] {
        assign.insert(u, cand);
        if consistent(pattern, rels, assign)
            && search(pattern, rels, nulls, depth + 1, candidates, assign)
        {
            return true;
        }
        assign.remove(&u);
    }
    false
}

fn consistent(
    pattern: &GraphPattern,
    rels: &[BinRel],
    assign: &FxHashMap<PNodeId, NodeId>,
) -> bool {
    for (ei, (s, _, d)) in pattern.edges().iter().enumerate() {
        if let (Some(&hs), Some(&hd)) = (assign.get(s), assign.get(d)) {
            if !rels[ei].contains(hs, hd) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3() -> GraphPattern {
        GraphPattern::parse(
            "(c1, f.f*, _N1); (_N1, f.f*, c2); (_N1, h, hy);
             (c1, f.f*, _N2); (_N2, f.f*, c2); (_N2, h, hx);
             (c3, f.f*, _N3); (_N3, f.f*, c2); (_N3, h, hx);",
        )
        .unwrap()
    }

    #[test]
    fn g1_is_represented_by_fig3() {
        // Figure 1(a): all three nulls fold onto the single null N.
        let g1 = Graph::parse("(c1, f, _N); (c3, f, _N); (_N, f, c2); (_N, h, hx); (_N, h, hy);")
            .unwrap();
        assert!(represents(&fig3(), &g1));
    }

    #[test]
    fn g2_is_represented_by_fig3() {
        // Figure 1(b): two intermediate nulls.
        let g2 = Graph::parse(
            "(c1, f, _N1); (c3, f, _N1); (_N1, f, _N2); (_N1, f, c2);
             (_N2, f, c2); (_N1, h, hy); (_N1, h, hx);",
        )
        .unwrap();
        assert!(represents(&fig3(), &g2));
    }

    #[test]
    fn missing_hotel_edge_breaks_hom() {
        let g = Graph::parse("(c1, f, _N); (c3, f, _N); (_N, f, c2); (_N, h, hx);").unwrap();
        // No h-edge to hy anywhere: N1's (N1, h, hy) constraint fails.
        assert!(!represents(&fig3(), &g));
    }

    #[test]
    fn missing_constant_breaks_hom() {
        let g = Graph::parse("(c1, f, _N); (_N, f, c2); (_N, h, hx); (_N, h, hy);").unwrap();
        // c3 absent from G.
        assert!(!represents(&fig3(), &g));
    }

    #[test]
    fn kleene_star_folds_long_paths() {
        let p = GraphPattern::parse("(a, f.f*, b);").unwrap();
        let long = Graph::parse("(a, f, _X1); (_X1, f, _X2); (_X2, f, b);").unwrap();
        assert!(represents(&p, &long));
        let zero = Graph::parse("node(a); node(b);").unwrap();
        assert!(!represents(&p, &zero), "f.f* needs at least one f");
    }

    #[test]
    fn hom_map_is_returned() {
        let p = GraphPattern::parse("(a, f, _N); (_N, h, c);").unwrap();
        let g = Graph::parse("(a, f, m); (m, h, c);").unwrap();
        let h = find_pattern_homomorphism(&p, &g).unwrap();
        let n = p.node_id(gdx_graph::Node::null("N")).unwrap();
        let m = g.node_id(gdx_graph::Node::cst("m")).unwrap();
        assert_eq!(h[&n], m);
    }

    #[test]
    fn self_loop_pattern_edge() {
        let p = GraphPattern::parse("(_N, t1+f1, _N);").unwrap();
        let g_yes = Graph::parse("(c1, t1, c1);").unwrap();
        let g_no = Graph::parse("(c1, t1, c2);").unwrap();
        assert!(represents(&p, &g_yes));
        assert!(!represents(&p, &g_no));
    }

    #[test]
    fn epsilon_edge_forces_equality() {
        let p = GraphPattern::parse("(a, eps, b);").unwrap();
        let g = Graph::parse("node(a); node(b);").unwrap();
        assert!(!represents(&p, &g), "ε between distinct constants");
        let p2 = GraphPattern::parse("(a, eps, _N);").unwrap();
        assert!(represents(&p2, &g), "null folds onto a itself");
    }
}
