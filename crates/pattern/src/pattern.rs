//! The graph-pattern data type.

use gdx_common::lexer::{TokenCursor, TokenKind};
use gdx_common::{FxHashMap, FxHashSet, GdxError, Result};
use gdx_graph::Node;
use gdx_nre::parse::parse_union;
use gdx_nre::Nre;
use std::fmt;

/// Dense handle to a pattern node.
pub type PNodeId = u32;

/// A graph pattern `π = (N, D)` with NRE-labeled edges.
///
/// ```
/// use gdx_pattern::GraphPattern;
/// let pi = GraphPattern::parse("(c1, f.f*, _N1); (_N1, h, hy);").unwrap();
/// assert_eq!(pi.node_count(), 3);
/// assert_eq!(pi.edge_count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphPattern {
    nodes: Vec<Node>,
    ids: FxHashMap<Node, PNodeId>,
    edges: Vec<(PNodeId, Nre, PNodeId)>,
    edge_set: FxHashSet<(PNodeId, Nre, PNodeId)>,
}

impl GraphPattern {
    /// An empty pattern.
    pub fn new() -> GraphPattern {
        GraphPattern::default()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of null nodes.
    pub fn null_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.is_const()).count()
    }

    /// Adds (or finds) a node.
    pub fn add_node(&mut self, node: Node) -> PNodeId {
        if let Some(&id) = self.ids.get(&node) {
            return id;
        }
        // Capacity invariant: >u32::MAX pattern nodes is out of scope.
        #[allow(clippy::expect_used)]
        let id = u32::try_from(self.nodes.len()).expect("pattern node overflow");
        self.nodes.push(node);
        self.ids.insert(node, id);
        id
    }

    /// Adds an NRE-labeled edge; returns `true` when new.
    pub fn add_edge(&mut self, src: PNodeId, nre: Nre, dst: PNodeId) -> bool {
        debug_assert!((src as usize) < self.nodes.len());
        debug_assert!((dst as usize) < self.nodes.len());
        if !self.edge_set.insert((src, nre.clone(), dst)) {
            return false;
        }
        self.edges.push((src, nre, dst));
        true
    }

    /// The node behind an id.
    pub fn node(&self, id: PNodeId) -> Node {
        self.nodes[id as usize]
    }

    /// The id of a node, if present.
    pub fn node_id(&self, node: Node) -> Option<PNodeId> {
        self.ids.get(&node).copied()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = PNodeId> + '_ {
        0..self.nodes.len() as u32
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[(PNodeId, Nre, PNodeId)] {
        &self.edges
    }

    /// Edge membership.
    pub fn has_edge(&self, src: PNodeId, nre: &Nre, dst: PNodeId) -> bool {
        self.edge_set.contains(&(src, nre.clone(), dst))
    }

    /// The quotient of the pattern under a node mapping (`rep` returns a
    /// pattern node id of `self` for each node id). Edges are rewritten and
    /// deduplicated — the merge primitive of the egd chase.
    pub fn quotient(&self, mut rep: impl FnMut(PNodeId) -> PNodeId) -> GraphPattern {
        let mut p = GraphPattern::new();
        let mut remap: FxHashMap<PNodeId, PNodeId> = FxHashMap::default();
        for id in self.node_ids() {
            let new_id = p.add_node(self.node(rep(id)));
            remap.insert(id, new_id);
        }
        for (s, r, d) in &self.edges {
            p.add_edge(remap[s], r.clone(), remap[d]);
        }
        p
    }

    /// Converts a pattern whose every edge is a single symbol into a plain
    /// graph; fails on any other edge shape. (Inverse of
    /// [`GraphPattern::from_graph`].)
    pub fn to_graph(&self) -> Result<gdx_graph::Graph> {
        let mut g = gdx_graph::Graph::new();
        let mut remap: FxHashMap<PNodeId, gdx_graph::NodeId> = FxHashMap::default();
        for id in self.node_ids() {
            remap.insert(id, g.add_node(self.node(id)));
        }
        for (s, r, d) in &self.edges {
            match r {
                Nre::Label(a) => {
                    g.add_edge(remap[s], *a, remap[d]);
                }
                other => {
                    return Err(GdxError::unsupported(format!(
                        "pattern edge `{other}` is not a single symbol"
                    )))
                }
            }
        }
        Ok(g)
    }

    /// Views a plain graph as a pattern (each edge becomes a
    /// single-symbol NRE edge).
    pub fn from_graph(g: &gdx_graph::Graph) -> GraphPattern {
        let mut p = GraphPattern::new();
        let mut remap: FxHashMap<gdx_graph::NodeId, PNodeId> = FxHashMap::default();
        for id in g.node_ids() {
            remap.insert(id, p.add_node(g.node(id)));
        }
        for &(s, l, d) in g.edges() {
            p.add_edge(remap[&s], Nre::Label(l), remap[&d]);
        }
        p
    }

    /// Parses the edge-list format `(node, nre, node); …` with `_`-prefixed
    /// null names, e.g. `(c1, f.f*, _N1); (_N1, h, hy);`.
    pub fn parse(input: &str) -> Result<GraphPattern> {
        let mut cur = TokenCursor::new(input)?;
        let mut p = GraphPattern::new();
        while !cur.at_eof() {
            if cur.eat_keyword("node") {
                cur.expect(&TokenKind::LParen, "node declaration")?;
                let n = parse_pnode(&mut cur)?;
                p.add_node(n);
                cur.expect(&TokenKind::RParen, "node declaration")?;
            } else {
                cur.expect(&TokenKind::LParen, "pattern edge")?;
                let src = parse_pnode(&mut cur)?;
                cur.expect(&TokenKind::Comma, "pattern edge")?;
                let nre = parse_union(&mut cur)?;
                cur.expect(&TokenKind::Comma, "pattern edge")?;
                let dst = parse_pnode(&mut cur)?;
                cur.expect(&TokenKind::RParen, "pattern edge")?;
                let s = p.add_node(src);
                let d = p.add_node(dst);
                p.add_edge(s, nre, d);
            }
            while cur.eat(&TokenKind::Semi) || cur.eat(&TokenKind::Comma) {}
        }
        Ok(p)
    }

    /// GraphViz DOT rendering.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("digraph Pattern {\n");
        for id in self.node_ids() {
            let n = self.node(id);
            let shape = if n.is_const() { "box" } else { "ellipse" };
            let _ = writeln!(s, "  n{id} [label=\"{n}\", shape={shape}];");
        }
        for (src, r, dst) in &self.edges {
            let _ = writeln!(s, "  n{src} -> n{dst} [label=\"{r}\"];");
        }
        s.push_str("}\n");
        s
    }
}

fn parse_pnode(cur: &mut TokenCursor) -> Result<Node> {
    let (name, _quoted) = cur.expect_name("pattern node")?;
    if let Some(rest) = name.strip_prefix('_') {
        if rest.is_empty() {
            return Err(cur.error("null node needs a name after `_`"));
        }
        Ok(Node::null(rest))
    } else {
        Ok(Node::cst(&name))
    }
}

impl fmt::Display for GraphPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (s, r, d) in &self.edges {
            writeln!(f, "({}, {r}, {});", self.node(*s), self.node(*d))?;
        }
        let mut touched: FxHashSet<PNodeId> = FxHashSet::default();
        for (s, _, d) in &self.edges {
            touched.insert(*s);
            touched.insert(*d);
        }
        for id in self.node_ids() {
            if !touched.contains(&id) {
                writeln!(f, "node({});", self.node(id))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 3 pattern (universal representative of Example 3.2).
    pub fn fig3() -> GraphPattern {
        GraphPattern::parse(
            "(c1, f.f*, _N1); (_N1, f.f*, c2); (_N1, h, hy);
             (c1, f.f*, _N2); (_N2, f.f*, c2); (_N2, h, hx);
             (c3, f.f*, _N3); (_N3, f.f*, c2); (_N3, h, hx);",
        )
        .unwrap()
    }

    #[test]
    fn parse_fig3() {
        let p = fig3();
        assert_eq!(p.node_count(), 8, "c1,c2,c3,hx,hy,N1,N2,N3");
        assert_eq!(p.edge_count(), 9);
        assert_eq!(p.null_count(), 3);
    }

    #[test]
    fn edges_dedup() {
        let mut p = GraphPattern::new();
        let a = p.add_node(Node::cst("a"));
        let b = p.add_node(Node::cst("b"));
        assert!(p.add_edge(a, Nre::label("f"), b));
        assert!(!p.add_edge(a, Nre::label("f"), b));
        assert!(p.add_edge(a, Nre::label("f").star(), b), "different NRE");
        assert_eq!(p.edge_count(), 2);
    }

    #[test]
    fn quotient_merges_nulls() {
        let p = fig3();
        let n2 = p.node_id(Node::null("N2")).unwrap();
        let n3 = p.node_id(Node::null("N3")).unwrap();
        let q = p.quotient(|id| if id == n3 { n2 } else { id });
        assert_eq!(q.node_count(), 7);
        // (N3,h,hx) and (N3,f.f*,c2) collapse onto N2's copies; c3's edge
        // is retargeted: 9 - 2 = 7 edges.
        assert_eq!(q.edge_count(), 7);
    }

    #[test]
    fn graph_roundtrip() {
        let g = gdx_graph::Graph::parse("(a, f, b); (b, h, _N);").unwrap();
        let p = GraphPattern::from_graph(&g);
        assert_eq!(p.edge_count(), 2);
        let g2 = p.to_graph().unwrap();
        assert!(gdx_graph::is_isomorphic(&g, &g2));
    }

    #[test]
    fn to_graph_rejects_complex_edges() {
        let p = GraphPattern::parse("(a, f.f*, b);").unwrap();
        assert!(p.to_graph().is_err());
    }

    #[test]
    fn display_roundtrip() {
        let p = fig3();
        let p2 = GraphPattern::parse(&p.to_string()).unwrap();
        assert_eq!(p.node_count(), p2.node_count());
        assert_eq!(p.edge_count(), p2.edge_count());
        for (s, r, d) in p.edges() {
            let s2 = p2.node_id(p.node(*s)).unwrap();
            let d2 = p2.node_id(p.node(*d)).unwrap();
            assert!(p2.has_edge(s2, r, d2));
        }
    }

    #[test]
    fn dot_output() {
        let dot = fig3().to_dot();
        assert!(dot.contains("f.f*"));
        assert!(dot.contains("shape=ellipse"));
    }
}
