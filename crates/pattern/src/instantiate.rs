//! Canonical instantiation of graph patterns.
//!
//! An *instantiation* realizes every NRE edge of a pattern by a concrete
//! witness path (fresh nulls for intermediate nodes), producing a graph `G`
//! with `π → G` via the identity-on-pattern-nodes homomorphism. The
//! shortest instantiation is the canonical solution of a setting without
//! target constraints; the *family* of bounded instantiations is the
//! candidate pool for certain-answer counterexample search (these are
//! homomorphism-minimal members of `Rep_Σ(π)` up to the enumeration
//! bounds — see DESIGN.md §5).
//!
//! Edges whose language is `{ε}` force their endpoints to be equal; the
//! instantiator resolves those by merging (failing when both endpoints are
//! distinct constants).

use crate::pattern::{GraphPattern, PNodeId};
use gdx_common::{FxHashMap, GdxError, Result, UnionFind};
use gdx_graph::{Graph, NodeId};
use gdx_nre::witness::{self, EnumConfig, Witness};
use gdx_nre::Nre;

/// Bounds for instantiation families.
#[derive(Debug, Clone, Copy)]
pub struct InstantiationConfig {
    /// Witness enumeration bounds per edge.
    pub witnesses: EnumConfig,
    /// Cap on the number of graphs generated.
    pub max_graphs: usize,
}

impl Default for InstantiationConfig {
    fn default() -> InstantiationConfig {
        InstantiationConfig {
            witnesses: EnumConfig::default(),
            max_graphs: 256,
        }
    }
}

/// Merges endpoints of `{ε}`-language edges; returns the quotiented
/// pattern and the list of residual (non-ε-only) edges. Fails when two
/// distinct constants are forced equal.
fn resolve_epsilon_edges(pattern: &GraphPattern) -> Result<GraphPattern> {
    let mut uf = UnionFind::new(pattern.node_count());
    for (s, r, d) in pattern.edges() {
        let eps_only = witness::shortest_nonempty(r).is_none();
        if eps_only && s != d {
            // Representative preference: constants win.
            let (rs, rd) = (uf.find(*s), uf.find(*d));
            if rs == rd {
                continue;
            }
            let s_const = pattern.node(rs).is_const();
            let d_const = pattern.node(rd).is_const();
            match (s_const, d_const) {
                (true, true) => {
                    return Err(GdxError::unsupported(format!(
                        "ε-only pattern edge forces distinct constants {} = {}",
                        pattern.node(rs),
                        pattern.node(rd)
                    )))
                }
                (true, false) => {
                    uf.union_into(rs, rd);
                }
                _ => {
                    uf.union_into(rd, rs);
                }
            }
        }
    }
    let mut quotiented = pattern.quotient(|id| uf.find_const(id));
    // Drop self-loop edges whose shortest witness materializes nothing at
    // all (pure ε, no nesting-test branches): they are trivially
    // satisfied. Test edges like `[f]` keep their branch obligations.
    let mut clean = GraphPattern::new();
    let mut remap: FxHashMap<PNodeId, PNodeId> = FxHashMap::default();
    for id in quotiented.node_ids() {
        remap.insert(id, clean.add_node(quotiented.node(id)));
    }
    let edges: Vec<_> = quotiented.edges().to_vec();
    for (s, r, d) in edges {
        if s == d {
            let w = witness::shortest(&r);
            if w.main_len() == 0 && w.edge_count() == 0 {
                continue;
            }
        }
        clean.add_edge(remap[&s], r, remap[&d]);
    }
    quotiented = clean;
    Ok(quotiented)
}

/// The canonical (shortest-witness) instantiation of `pattern`.
///
/// Every pattern node appears under its own name; every edge is realized
/// by its shortest witness (preferring non-empty main paths between
/// distinct endpoints).
pub fn instantiate_shortest(pattern: &GraphPattern) -> Result<Graph> {
    let pattern = resolve_epsilon_edges(pattern)?;
    // Witness paths may add a few nulls beyond the pattern's nodes; the
    // pattern sizes are the right ballpark for presizing either way.
    let mut g = Graph::with_capacity(pattern.node_count(), pattern.edge_count());
    let mut node_map: FxHashMap<PNodeId, NodeId> = FxHashMap::default();
    for id in pattern.node_ids() {
        node_map.insert(id, g.add_node(pattern.node(id)));
    }
    for (s, r, d) in pattern.edges() {
        let w = pick_witness(r, s == d)?;
        witness::materialize(&mut g, &w, node_map[s], node_map[d])?;
    }
    Ok(g)
}

fn pick_witness(r: &Nre, self_loop: bool) -> Result<Witness> {
    let shortest = witness::shortest(r);
    if shortest.main_len() == 0 && !self_loop {
        witness::shortest_nonempty(r).ok_or_else(|| {
            GdxError::Internal("ε-only edge survived resolve_epsilon_edges".to_owned())
        })
    } else {
        Ok(shortest)
    }
}

/// A bounded family of instantiations of `pattern`: the cartesian product
/// of per-edge witness families, capped at `cfg.max_graphs`, shortest
/// combination first. Every returned graph is in `Rep_Σ(pattern)`.
///
/// Materializing wrapper around [`InstantiationFamily`]; callers that can
/// stop early (the solver's first-witness search, the streaming solution
/// enumerator) should iterate the family lazily instead.
pub fn instantiation_family(
    pattern: &GraphPattern,
    cfg: InstantiationConfig,
) -> Result<Vec<Graph>> {
    InstantiationFamily::new(pattern, cfg)?.collect()
}

/// Lazy iterator over the bounded instantiation family of a pattern.
///
/// Construction resolves ε-edges, enumerates the per-edge witness families
/// (cheap: per-NRE, not per-graph), and materializes the *shared skeleton*
/// once: all pattern nodes plus the witness realizations of every edge
/// position the bounded odometer can never vary (given `max_graphs`, only
/// a prefix of edge positions ever cycles). Each [`Iterator::next`] then
/// emits a copy-on-write fork of that skeleton ([`Graph::fork`]) and
/// materializes only the varying prefix — per-candidate cost is
/// O(|witness deltas|), independent of pattern size, and every candidate
/// shares the skeleton's storage (and frozen CSR) through one `Arc`.
#[derive(Debug)]
pub struct InstantiationFamily {
    pattern: GraphPattern,
    per_edge: Vec<Vec<Witness>>,
    counters: Vec<usize>,
    produced: usize,
    cfg: InstantiationConfig,
    done: bool,
    /// Edge positions `[0, vary)` cycle through their witness lists; the
    /// suffix `[vary, E)` is pinned to witness 0 and lives in `base`.
    vary: usize,
    /// The shared skeleton: pattern nodes + witness-0 realization of every
    /// pinned edge position. Candidates are forks of this graph.
    base: Graph,
    node_map: FxHashMap<PNodeId, NodeId>,
}

impl InstantiationFamily {
    /// Prepares the family. Fails with [`GdxError::LimitExceeded`] when
    /// the witness bounds leave some edge without any realization.
    pub fn new(pattern: &GraphPattern, cfg: InstantiationConfig) -> Result<InstantiationFamily> {
        let pattern = resolve_epsilon_edges(pattern)?;
        let per_edge: Vec<Vec<Witness>> = pattern
            .edges()
            .iter()
            .map(|(s, r, d)| {
                witness::enumerate(r, cfg.witnesses)
                    .into_iter()
                    .filter(|w| w.main_len() > 0 || s == d)
                    .collect::<Vec<_>>()
            })
            .collect();
        if per_edge.iter().any(Vec::is_empty) {
            // An edge admits no usable witness within bounds (ε-only
            // between distinct nodes was already resolved, so this is a
            // bounds issue).
            return Err(GdxError::limit(
                "witness enumeration bounds left an edge without realizations",
            ));
        }
        let counters = vec![0usize; per_edge.len()];
        // The odometer increments at most `max_graphs - 1` times, and
        // position `i` first moves only after Π_{j<i} |family_j| ticks —
        // so the smallest prefix whose product reaches the cap bounds
        // everything the enumeration can ever touch. Positions beyond it
        // stay at witness 0 forever and belong in the shared skeleton.
        let mut vary = per_edge.len();
        let mut prefix_product = 1usize;
        for (i, ws) in per_edge.iter().enumerate() {
            if prefix_product >= cfg.max_graphs {
                vary = i;
                break;
            }
            prefix_product = prefix_product.saturating_mul(ws.len());
        }
        let mut base = Graph::with_capacity(pattern.node_count(), pattern.edge_count());
        let mut node_map: FxHashMap<PNodeId, NodeId> = FxHashMap::default();
        for id in pattern.node_ids() {
            node_map.insert(id, base.add_node(pattern.node(id)));
        }
        for (ei, ws) in per_edge.iter().enumerate().skip(vary) {
            let (s, _, d) = &pattern.edges()[ei];
            witness::materialize(&mut base, &ws[0], node_map[s], node_map[d])?;
        }
        Ok(InstantiationFamily {
            pattern,
            per_edge,
            counters,
            produced: 0,
            cfg,
            done: false,
            vary,
            base,
            node_map,
        })
    }

    /// True once iteration stopped because the `max_graphs` cap tripped —
    /// the family is then a strict prefix of the full cartesian product,
    /// and exactness arguments based on "all candidates examined" no
    /// longer hold.
    pub fn truncated(&self) -> bool {
        self.done && self.produced >= self.cfg.max_graphs
    }
}

impl Iterator for InstantiationFamily {
    type Item = Result<Graph>;

    fn next(&mut self) -> Option<Result<Graph>> {
        if self.done {
            return None;
        }
        // O(1) fork of the shared skeleton; only the varying witness
        // prefix is materialized into the candidate's private delta.
        let mut g = self.base.fork();
        for ei in 0..self.vary {
            let (s, _, d) = &self.pattern.edges()[ei];
            let w = &self.per_edge[ei][self.counters[ei]];
            if let Err(e) = witness::materialize(&mut g, w, self.node_map[s], self.node_map[d]) {
                self.done = true;
                return Some(Err(e));
            }
        }
        self.produced += 1;
        if self.produced >= self.cfg.max_graphs {
            self.done = true;
            return Some(Ok(g));
        }
        // Odometer increment (never reaches position `vary`, by
        // construction of the prefix bound).
        let mut i = 0;
        loop {
            if i == self.counters.len() {
                self.done = true;
                break;
            }
            self.counters[i] += 1;
            if self.counters[i] < self.per_edge[i].len() {
                break;
            }
            self.counters[i] = 0;
            i += 1;
        }
        Some(Ok(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::represents;

    fn fig3() -> GraphPattern {
        GraphPattern::parse(
            "(c1, f.f*, _N1); (_N1, f.f*, c2); (_N1, h, hy);
             (c1, f.f*, _N2); (_N2, f.f*, c2); (_N2, h, hx);
             (c3, f.f*, _N3); (_N3, f.f*, c2); (_N3, h, hx);",
        )
        .unwrap()
    }

    #[test]
    fn shortest_instantiation_is_represented() {
        let p = fig3();
        let g = instantiate_shortest(&p).unwrap();
        assert!(represents(&p, &g), "π → canonical(π) must hold");
        // Shortest witnesses: every f.f* edge becomes one f edge.
        assert_eq!(g.edge_count(), 9);
        assert_eq!(g.node_count(), 8);
    }

    #[test]
    fn family_members_are_represented() {
        let p = GraphPattern::parse("(a, f.f*, b); (b, h+g, c);").unwrap();
        let family = instantiation_family(&p, InstantiationConfig::default()).unwrap();
        assert!(family.len() >= 4, "star unrollings × union branches");
        for g in &family {
            assert!(represents(&p, g));
        }
    }

    #[test]
    fn family_varies_witness_words() {
        let p = GraphPattern::parse("(a, f.f*, b);").unwrap();
        let family = instantiation_family(&p, InstantiationConfig::default()).unwrap();
        let sizes: std::collections::BTreeSet<usize> =
            family.iter().map(Graph::edge_count).collect();
        assert!(sizes.contains(&1) && sizes.contains(&2), "{sizes:?}");
    }

    #[test]
    fn epsilon_edge_merges_null() {
        let p = GraphPattern::parse("(a, eps, _N); (_N, f, b);").unwrap();
        let g = instantiate_shortest(&p).unwrap();
        // N merged into a: single edge a -f-> b.
        assert_eq!(g.edge_count(), 1);
        assert!(g.node_id(gdx_graph::Node::null("N")).is_none());
        assert!(represents(&p, &g));
    }

    #[test]
    fn epsilon_between_constants_fails() {
        let p = GraphPattern::parse("(a, eps, b);").unwrap();
        assert!(instantiate_shortest(&p).is_err());
        let p2 = GraphPattern::parse("(a, eps+f, b);").unwrap();
        // Non-ε realization exists: f.
        let g = instantiate_shortest(&p2).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn test_edges_materialize_branches() {
        let p = GraphPattern::parse("(a, f.[h], b);").unwrap();
        let g = instantiate_shortest(&p).unwrap();
        // a -f-> b plus b -h-> fresh.
        assert_eq!(g.edge_count(), 2);
        assert!(represents(&p, &g));
    }

    #[test]
    fn family_respects_cap() {
        let p = GraphPattern::parse("(a, (f+g)*.(x+y), b);").unwrap();
        let family = instantiation_family(
            &p,
            InstantiationConfig {
                max_graphs: 5,
                ..InstantiationConfig::default()
            },
        )
        .unwrap();
        assert_eq!(family.len(), 5);
    }

    #[test]
    fn pure_test_edge_keeps_branch_obligation() {
        // Regression: (k0, [f], _N) has an ε-only main path, so N merges
        // into k0 — but the nesting test still demands an outgoing
        // f-witness at k0. Dropping the self-loop entirely produced
        // instantiations outside Rep(π).
        let p = GraphPattern::parse("(k0, [f], _N);").unwrap();
        let g = instantiate_shortest(&p).unwrap();
        assert_eq!(g.edge_count(), 1, "the f-branch must materialize");
        assert!(represents(&p, &g));
        // A pure-ε self-loop, by contrast, is dropped.
        let p2 = GraphPattern::parse("(k0, eps, _N);").unwrap();
        let g2 = instantiate_shortest(&p2).unwrap();
        assert_eq!(g2.edge_count(), 0);
        assert!(represents(&p2, &g2));
    }

    #[test]
    fn example_5_2_pattern_instantiation() {
        // π = (c1, a.(b*+c*).a, c2): shortest realization is a·a through one
        // fresh null.
        let p = GraphPattern::parse("(c1, a.(b0*+c0*).a, c2);").unwrap();
        let g = instantiate_shortest(&p).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.node_count(), 3);
        assert!(represents(&p, &g));
    }
}
