//! # gdx-pattern
//!
//! Graph patterns: the universal-representative formalism of graph data
//! exchange (Barceló–Pérez–Reutter 2013, adopted by the paper).
//!
//! A pattern `π = (N, D)` has nodes `N ⊆ 𝒱 ∪ 𝒩` (constants and labeled
//! nulls) and edges `D ⊆ N × NRE(Σ) × N` — edges carry whole NREs, not
//! single symbols. Its semantics is the set of graphs it maps into:
//! `Rep_Σ(π) = {G | π → G}`, where a homomorphism `h` must be the identity
//! on constants and satisfy `(h(u), h(v)) ∈ ⟦r⟧_G` for every pattern edge
//! `(u, r, v)`.
//!
//! * [`GraphPattern`] — the pattern type, text format
//!   (`(c1, f.f*, _N1);`), quotienting (for the egd chase);
//! * [`hom`] — pattern-to-graph homomorphism search / `Rep` membership;
//! * [`instantiate`] — canonical instantiation: realize every NRE edge by a
//!   witness path (shortest, or an enumerated family for counterexample
//!   search). Every instantiation `G` satisfies `π → G`, i.e. lies in
//!   `Rep_Σ(π)`.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]

pub mod core_retract;
pub mod hom;
pub mod instantiate;
pub mod pattern;

pub use core_retract::{is_retract_minimal, retract_core};
pub use hom::{find_pattern_homomorphism, represents};
pub use instantiate::{
    instantiate_shortest, instantiation_family, InstantiationConfig, InstantiationFamily,
};
pub use pattern::{GraphPattern, PNodeId};
