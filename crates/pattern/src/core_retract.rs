//! Core computation for graph patterns.
//!
//! The oblivious chase fires every trigger, so its output often contains
//! redundant nulls (two triggers demanding isomorphic sub-patterns). The
//! *core* — the smallest retract — is the canonical minimal
//! representative, a standard notion in relational data exchange
//! (Fagin–Kolaitis–Popa) lifted here to NRE-labeled patterns by treating
//! distinct NREs as distinct edge labels (sound: a fold that preserves
//! syntactic edges preserves every `Rep` homomorphism).
//!
//! The algorithm is greedy single-null folding: repeatedly look for a null
//! `n` and a node `m ≠ n` such that replacing `n` by `m` maps every edge
//! onto an *existing* edge; each fold is a retraction, so the result is
//! homomorphically equivalent to the input (`Rep` is preserved both ways —
//! property-tested). Greedy folding reaches *a* retract; for the
//! chase-shaped patterns in this workspace it coincides with the core.

use crate::pattern::{GraphPattern, PNodeId};
use gdx_common::{FxHashSet, UnionFind};
use gdx_nre::Nre;

/// Greedily folds redundant nulls; returns the retract and the number of
/// folds performed.
///
/// Folding happens on a union-find overlay over the input's node ids: the
/// canonical edge set (edges keyed by current representatives) is rewritten
/// in place per fold — O(deg) per fold instead of a full pattern rebuild —
/// and the pattern is quotiented exactly once at the end. The scan order
/// (nulls in id order × candidates in id order, restart after every fold)
/// matches the previous rebuild-per-fold implementation, because quotients
/// preserve the relative order of surviving nodes; fold counts are
/// identical.
pub fn retract_core(pattern: &GraphPattern) -> (GraphPattern, usize) {
    let n = pattern.node_count();
    let mut uf = UnionFind::new(n);
    let mut edges: FxHashSet<(PNodeId, Nre, PNodeId)> = pattern.edges().iter().cloned().collect();
    let mut folds = 0usize;
    'outer: loop {
        let reps: Vec<PNodeId> = (0..n as PNodeId)
            .filter(|&id| uf.find_const(id) == id)
            .collect();
        for &nl in reps.iter().filter(|&&id| !pattern.node(id).is_const()) {
            for &m in &reps {
                if m == nl {
                    continue;
                }
                if fold_ok(&edges, nl, m) {
                    // Apply the fold: rewrite edges incident to `nl` onto
                    // `m` (membership dedups against existing edges).
                    let incident: Vec<_> = edges
                        // gdx-lint: allow(hash-iter) — incident edges are rewritten and re-inserted into the edge set; membership dedup makes order immaterial
                        .iter()
                        .filter(|(s, _, d)| *s == nl || *d == nl)
                        .cloned()
                        .collect();
                    for e in &incident {
                        edges.remove(e);
                    }
                    for (s, r, d) in incident {
                        let hs = if s == nl { m } else { s };
                        let hd = if d == nl { m } else { d };
                        edges.insert((hs, r, hd));
                    }
                    uf.union_into(m, nl);
                    folds += 1;
                    continue 'outer;
                }
            }
        }
        let core = pattern.quotient(|id| uf.find_const(id));
        return (core, folds);
    }
}

/// Does mapping `n ↦ m` (identity elsewhere) send every canonical edge
/// onto an existing canonical edge?
fn fold_ok(edges: &FxHashSet<(PNodeId, Nre, PNodeId)>, n: PNodeId, m: PNodeId) -> bool {
    edges.iter().all(|(s, r, d)| {
        if *s != n && *d != n {
            return true;
        }
        let hs = if *s == n { m } else { *s };
        let hd = if *d == n { m } else { *d };
        edges.contains(&(hs, r.clone(), hd))
    })
}

/// Does mapping `n ↦ m` (identity elsewhere) send every edge onto an
/// existing edge?
fn fold_is_retraction(p: &GraphPattern, n: PNodeId, m: PNodeId) -> bool {
    let h = |id: PNodeId| if id == n { m } else { id };
    p.edges().iter().all(|(s, r, d)| {
        let (hs, hd) = (h(*s), h(*d));
        if (hs, hd) == (*s, *d) {
            true
        } else {
            p.has_edge(hs, r, hd)
        }
    })
}

/// True when no null can fold — the pattern is its own retract.
pub fn is_retract_minimal(pattern: &GraphPattern) -> bool {
    let nulls: Vec<PNodeId> = pattern
        .node_ids()
        .filter(|&id| !pattern.node(id).is_const())
        .collect();
    for &n in &nulls {
        for m in pattern.node_ids() {
            if m != n && fold_is_retraction(pattern, n, m) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::represents;
    use crate::instantiate::instantiate_shortest;

    #[test]
    fn duplicate_nulls_fold() {
        // Two isomorphic triggers: (a, f, N1) and (a, f, N2).
        let p = GraphPattern::parse("(a, f, _N1); (a, f, _N2);").unwrap();
        let (core, folds) = retract_core(&p);
        assert_eq!(folds, 1);
        assert_eq!(core.node_count(), 2);
        assert_eq!(core.edge_count(), 1);
        assert!(is_retract_minimal(&core));
    }

    #[test]
    fn figure_3_pattern_is_minimal() {
        let p = GraphPattern::parse(
            "(c1, f.f*, _N1); (_N1, f.f*, c2); (_N1, h, hy);
             (c1, f.f*, _N2); (_N2, f.f*, c2); (_N2, h, hx);
             (c3, f.f*, _N3); (_N3, f.f*, c2); (_N3, h, hx);",
        )
        .unwrap();
        // N3 cannot fold onto N2: (c3, f.f*, N2) does not exist.
        let (core, folds) = retract_core(&p);
        assert_eq!(folds, 0);
        assert_eq!(core.node_count(), p.node_count());
        assert!(is_retract_minimal(&p));
    }

    #[test]
    fn null_folds_onto_constant() {
        // (a, f, N) folds onto the existing (a, f, b).
        let p = GraphPattern::parse("(a, f, b); (a, f, _N);").unwrap();
        let (core, folds) = retract_core(&p);
        assert_eq!(folds, 1);
        assert_eq!(core.edge_count(), 1);
        assert!(core.node_id(gdx_graph::Node::null("N")).is_none());
    }

    #[test]
    fn chain_folds_transitively() {
        // Three redundant copies collapse to one.
        let p = GraphPattern::parse(
            "(a, f, _N1); (_N1, h, b); (a, f, _N2); (_N2, h, b);
             (a, f, _N3); (_N3, h, b);",
        )
        .unwrap();
        let (core, folds) = retract_core(&p);
        assert_eq!(folds, 2);
        assert_eq!(core.edge_count(), 2);
    }

    #[test]
    fn retract_preserves_rep() {
        let p = GraphPattern::parse("(a, f.f*, _N1); (_N1, h, b); (a, f.f*, _N2); (_N2, h, b);")
            .unwrap();
        let (core, folds) = retract_core(&p);
        assert_eq!(folds, 1);
        // Rep(core) == Rep(p): both directions via canonical instantiations.
        let gi = instantiate_shortest(&p).unwrap();
        let gc = instantiate_shortest(&core).unwrap();
        assert!(represents(&core, &gi));
        assert!(represents(&p, &gc));
    }

    #[test]
    fn distinct_nres_block_folding() {
        // Same endpoints but different NREs: no fold.
        let p = GraphPattern::parse("(a, f, _N1); (a, f.f*, _N2);").unwrap();
        let (_, folds) = retract_core(&p);
        assert_eq!(folds, 0);
    }

    #[test]
    fn constants_never_fold() {
        let p = GraphPattern::parse("(a, f, b); (a, f, c);").unwrap();
        let (core, folds) = retract_core(&p);
        assert_eq!(folds, 0);
        assert_eq!(core.node_count(), 3);
    }
}
