//! The CNRE query type and its text format.

use gdx_common::lexer::{TokenCursor, TokenKind};
use gdx_common::{FxHashSet, GdxError, Result, Symbol, Term};
use gdx_nre::parse::parse_union;
use gdx_nre::Nre;
use std::fmt;

/// One CNRE atom `(t, r, t')`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnreAtom {
    /// Source term.
    pub left: Term,
    /// The path expression.
    pub nre: Nre,
    /// Destination term.
    pub right: Term,
}

impl CnreAtom {
    /// Builds an atom.
    pub fn new(left: Term, nre: Nre, right: Term) -> CnreAtom {
        CnreAtom { left, nre, right }
    }

    /// The variables of the atom (0, 1, or 2 of them).
    pub fn variables(&self) -> impl Iterator<Item = Symbol> {
        [self.left.as_var(), self.right.as_var()]
            .into_iter()
            .flatten()
    }
}

impl fmt::Display for CnreAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = |t: &Term| match t {
            Term::Var(v) => v.to_string(),
            Term::Const(c) => format!("\"{c}\""),
        };
        write!(f, "({}, {}, {})", t(&self.left), self.nre, t(&self.right))
    }
}

/// A conjunction of CNRE atoms. All variables are free; existential
/// quantification is handled by the enclosing tgd, not the query itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cnre {
    /// The conjuncts.
    pub atoms: Vec<CnreAtom>,
}

impl Cnre {
    /// Builds a query.
    pub fn new(atoms: Vec<CnreAtom>) -> Cnre {
        Cnre { atoms }
    }

    /// A single-atom query `(left, r, right)` — the shape the paper's
    /// query-answering problem uses.
    pub fn single(left: Term, nre: Nre, right: Term) -> Cnre {
        Cnre::new(vec![CnreAtom::new(left, nre, right)])
    }

    /// Distinct variables in first-occurrence order.
    pub fn variables(&self) -> Vec<Symbol> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for atom in &self.atoms {
            for v in atom.variables() {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// All alphabet symbols used by the NREs.
    pub fn symbols(&self) -> FxHashSet<Symbol> {
        let mut out = FxHashSet::default();
        for a in &self.atoms {
            out.extend(a.nre.symbols());
        }
        out
    }

    /// Validates: non-empty, and every NRE symbol within `alphabet` when
    /// one is supplied.
    pub fn validate(&self, alphabet: Option<&FxHashSet<Symbol>>) -> Result<()> {
        if self.atoms.is_empty() {
            return Err(GdxError::schema("empty CNRE"));
        }
        if let Some(ab) = alphabet {
            for a in &self.atoms {
                for s in a.nre.symbols() {
                    if !ab.contains(&s) {
                        return Err(GdxError::schema(format!(
                            "NRE symbol {s} not in target alphabet"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Parses `(x1, f.f*, y), (y, h, "hx")` — quoted names are constants.
    pub fn parse(input: &str) -> Result<Cnre> {
        let mut cur = TokenCursor::new(input)?;
        let q = parse_cnre(&mut cur)?;
        if !cur.at_eof() {
            return Err(cur.error("trailing input after CNRE"));
        }
        Ok(q)
    }
}

/// Parses a comma-separated list of `(term, nre, term)` atoms from an
/// existing cursor (embedded by the mapping DSL).
pub fn parse_cnre(cur: &mut TokenCursor) -> Result<Cnre> {
    let mut atoms = Vec::new();
    loop {
        cur.expect(&TokenKind::LParen, "CNRE atom")?;
        let left = parse_term(cur)?;
        cur.expect(&TokenKind::Comma, "CNRE atom")?;
        let nre = parse_union(cur)?;
        cur.expect(&TokenKind::Comma, "CNRE atom")?;
        let right = parse_term(cur)?;
        cur.expect(&TokenKind::RParen, "CNRE atom")?;
        atoms.push(CnreAtom::new(left, nre, right));
        if !cur.eat(&TokenKind::Comma) {
            break;
        }
    }
    Ok(Cnre::new(atoms))
}

fn parse_term(cur: &mut TokenCursor) -> Result<Term> {
    let (name, quoted) = cur.expect_name("CNRE term")?;
    Ok(if quoted {
        Term::Const(Symbol::new(&name))
    } else {
        Term::Var(Symbol::new(&name))
    })
}

impl fmt::Display for Cnre {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdx_nre::parse::parse_nre;

    #[test]
    fn parse_example_head() {
        // The head of M_st from Example 2.2.
        let q = Cnre::parse("(x2, f.f*, y), (y, h, x4), (y, f.f*, x3)").unwrap();
        assert_eq!(q.atoms.len(), 3);
        let vars: Vec<String> = q.variables().iter().map(|v| v.to_string()).collect();
        assert_eq!(vars, ["x2", "y", "x4", "x3"]);
        assert_eq!(q.atoms[0].nre, parse_nre("f.f*").unwrap());
    }

    #[test]
    fn constants_are_quoted() {
        let q = Cnre::parse("(\"c1\", a.a, \"c2\")").unwrap();
        assert_eq!(q.variables().len(), 0);
        assert_eq!(q.atoms[0].left, Term::cst("c1"));
        assert_eq!(q.atoms[0].right, Term::cst("c2"));
    }

    #[test]
    fn display_roundtrip() {
        for text in [
            "(x2, f.f*, y), (y, h, x4)",
            "(\"c1\", a+b, x)",
            "(x, f.f*.[h].f-.(f-)*, y)",
        ] {
            let q = Cnre::parse(text).unwrap();
            let q2 = Cnre::parse(&q.to_string()).unwrap();
            assert_eq!(q, q2);
        }
    }

    #[test]
    fn validate_alphabet() {
        let q = Cnre::parse("(x, f.h, y)").unwrap();
        let mut ab = FxHashSet::default();
        ab.insert(Symbol::new("f"));
        assert!(q.validate(Some(&ab)).is_err());
        ab.insert(Symbol::new("h"));
        q.validate(Some(&ab)).unwrap();
        q.validate(None).unwrap();
        assert!(Cnre::new(vec![]).validate(None).is_err());
    }

    #[test]
    fn symbols_union() {
        let q = Cnre::parse("(x, f.g, y), (y, h, z)").unwrap();
        assert_eq!(q.symbols().len(), 3);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Cnre::parse("(x, f y)").is_err());
        assert!(Cnre::parse("x, f, y").is_err());
        assert!(Cnre::parse("(x, , y)").is_err());
    }
}
