//! Prepared CNRE queries: parse, validate, and compile once — evaluate
//! many times.
//!
//! The free evaluation functions of [`crate::eval`] pay per call for work
//! that only depends on the *query*: validation, and compilation of the
//! guarded product-automata behind the demand access path (each fresh
//! [`EvalCache`] carries an empty demand pool). The paper's workloads ask
//! the same CNREs over and over — constraint bodies per chase round,
//! certain-answer probes per candidate solution — so [`PreparedQuery`]
//! hoists that work into construction:
//!
//! * the query text is parsed and validated once ([`PreparedQuery::parse`]);
//! * every atom's NRE is compiled into a demand evaluator up front
//!   ([`gdx_nre::DemandPool::prepared`]); atoms outside the demand
//!   fragment are remembered as materialize-only, so planning never
//!   re-attempts compilation;
//! * the variable list (the output schema) is computed once.
//!
//! Evaluation itself still takes the graph *and* a materialization cache:
//! relations are per-graph artifacts, while the compiled automata are
//! graph-independent (the demand evaluators re-pin their memo tables to
//! the `(GraphId, Epoch)` they are probed against, so one prepared query
//! serves many graphs and many epochs of one growing graph).
//!
//! ```
//! use gdx_graph::Graph;
//! use gdx_nre::eval::EvalCache;
//! use gdx_query::PreparedQuery;
//!
//! let q = PreparedQuery::parse("(\"c1\", f.f, \"c2\")").unwrap();
//! let g1 = Graph::parse("(c1, f, _N); (_N, f, c2);").unwrap();
//! let g2 = Graph::parse("(c1, f, c2);").unwrap();
//! // One compiled query, probed against two different graphs.
//! assert!(q.evaluate_exists(&g1).unwrap());
//! assert!(!q.evaluate_exists(&g2).unwrap());
//! // Callers with a cache keep materialized relations warm across calls.
//! let mut cache = EvalCache::new();
//! let rows = q.matches(&g1, &mut cache).unwrap();
//! assert_eq!(rows.len(), 1, "Boolean query: one empty witness row");
//! ```

use crate::cnre::Cnre;
use crate::eval::{planned_eval, NodeBindings, RelCache};
use crate::plan::PlannerMode;
use gdx_common::{FxHashMap, Result, Symbol, Term};
use gdx_graph::{Graph, NodeId};
use gdx_nre::demand::DemandEvaluator;
use gdx_nre::eval::EvalCache;
use gdx_nre::{BinRel, DemandPool, Nre};
use gdx_runtime::Runtime;
use std::cell::RefCell;

/// A parsed, validated CNRE with pre-compiled demand automata and its
/// output schema — reusable across graphs and epochs.
///
/// Construct once per query shape (per constraint body, per user query),
/// then call the evaluation methods freely; see the [module docs](self)
/// for what is hoisted into construction.
#[derive(Debug)]
pub struct PreparedQuery {
    query: Cnre,
    vars: Vec<Symbol>,
    pool: DemandPool,
}

impl PreparedQuery {
    /// Prepares a query from its text form, validating it first.
    ///
    /// ```
    /// use gdx_query::PreparedQuery;
    /// let q = PreparedQuery::parse("(x, f.f*, y), (y, h, \"hx\")").unwrap();
    /// assert_eq!(q.variables().len(), 2);
    /// assert!(PreparedQuery::parse("(x, , y)").is_err());
    /// ```
    pub fn parse(text: &str) -> Result<PreparedQuery> {
        let query = Cnre::parse(text)?;
        query.validate(None)?;
        Ok(PreparedQuery::new(query))
    }

    /// Prepares an already-built query. Compilation cannot fail (atoms
    /// outside the demand fragment simply materialize); shape validation
    /// happens on evaluation, exactly like the free functions.
    pub fn new(query: Cnre) -> PreparedQuery {
        let vars = query.variables();
        let pool = DemandPool::prepared(query.atoms.iter().map(|a| &a.nre));
        PreparedQuery { query, vars, pool }
    }

    /// Prepares the single-atom query `(left, r, right)` — the shape of
    /// the paper's query answering problem.
    pub fn single(left: Term, nre: Nre, right: Term) -> PreparedQuery {
        PreparedQuery::new(Cnre::single(left, nre, right))
    }

    /// The underlying query.
    pub fn cnre(&self) -> &Cnre {
        &self.query
    }

    /// Output schema: distinct variables in first-occurrence order.
    pub fn variables(&self) -> &[Symbol] {
        &self.vars
    }

    /// Evaluates over `graph` with a private, throwaway materialization
    /// cache. Callers issuing several calls against one graph should use
    /// [`PreparedQuery::matches`] with a shared [`EvalCache`].
    pub fn evaluate(&self, graph: &Graph) -> Result<NodeBindings> {
        self.matches(graph, &mut EvalCache::new())
    }

    /// Is the query satisfiable over `graph`? Early-exits at the first
    /// answer row; with a constants-only query this is the certain-answer
    /// probe shape, served by seeded product-BFS.
    pub fn evaluate_exists(&self, graph: &Graph) -> Result<bool> {
        let mut cache = EvalCache::new();
        Ok(!self
            .eval_planned(
                graph,
                &mut cache,
                &FxHashMap::default(),
                PlannerMode::Auto,
                Some(1),
                &Runtime::sequential(),
            )?
            .is_empty())
    }

    /// All matches over `graph`, with materialized relations drawn from
    /// (and left in) `cache` for reuse across calls on the same graph.
    pub fn matches(&self, graph: &Graph, cache: &mut EvalCache) -> Result<NodeBindings> {
        self.evaluate_seeded(graph, cache, &FxHashMap::default())
    }

    /// Evaluates with some variables pre-bound to graph nodes — the tgd
    /// head-satisfaction shape (frontier variables seeded, existential
    /// variables free). Seeded variables appear in the output columns with
    /// their fixed values.
    pub fn evaluate_seeded(
        &self,
        graph: &Graph,
        cache: &mut EvalCache,
        seed: &FxHashMap<Symbol, NodeId>,
    ) -> Result<NodeBindings> {
        self.eval_planned(
            graph,
            cache,
            seed,
            PlannerMode::Auto,
            None,
            &Runtime::sequential(),
        )
    }

    /// [`PreparedQuery::evaluate_seeded`] with an explicit planner mode —
    /// [`PlannerMode::Materialize`] forces the single-strategy baseline
    /// the benches and equivalence tests compare against.
    pub fn evaluate_seeded_mode(
        &self,
        graph: &Graph,
        cache: &mut EvalCache,
        seed: &FxHashMap<Symbol, NodeId>,
        mode: PlannerMode,
    ) -> Result<NodeBindings> {
        self.eval_planned(graph, cache, seed, mode, None, &Runtime::sequential())
    }

    /// Existence probe under a seed: early-exits at the first satisfying
    /// row.
    pub fn evaluate_seeded_exists(
        &self,
        graph: &Graph,
        cache: &mut EvalCache,
        seed: &FxHashMap<Symbol, NodeId>,
    ) -> Result<bool> {
        Ok(!self
            .eval_planned(
                graph,
                cache,
                seed,
                PlannerMode::Auto,
                Some(1),
                &Runtime::sequential(),
            )?
            .is_empty())
    }

    /// Explains the plan evaluation would use over `graph` with no seed:
    /// the per-atom access-path decisions and the cost estimates behind
    /// them, in join order. Shares the planner's loop, so the answer can
    /// never drift from what [`PreparedQuery::evaluate`] actually does.
    pub fn explain(&self, graph: &Graph, mode: PlannerMode) -> crate::explain::PlanExplain {
        crate::explain::explain_query(graph, &self.query, &Default::default(), mode)
    }

    /// Probe counters of the compiled demand evaluator for `r` (an atom's
    /// NRE), when `r` is in the demand fragment and was compiled at
    /// construction — observability for tests and benches.
    pub fn demand_stats(&self, r: &Nre) -> Option<gdx_nre::DemandStats> {
        self.pool.get(r).map(|ev| ev.borrow().stats())
    }

    /// The full-control entry point: planner mode and an answer-row cap
    /// (`limit`) in one call — the shape session-level `Options` map onto.
    pub fn evaluate_limited(
        &self,
        graph: &Graph,
        cache: &mut EvalCache,
        seed: &FxHashMap<Symbol, NodeId>,
        mode: PlannerMode,
        limit: Option<usize>,
    ) -> Result<NodeBindings> {
        self.eval_planned(graph, cache, seed, mode, limit, &Runtime::sequential())
    }

    /// [`PreparedQuery::evaluate_limited`] with an explicit [`Runtime`]:
    /// relation materialization and (for unlimited, fully-materialized
    /// joins) the join's outer loop partition across the runtime's
    /// workers. Answers are byte-identical at any worker count.
    ///
    /// The prepared query itself still evaluates from one calling thread
    /// (its compiled demand pool is single-threaded scratch); the
    /// parallelism here is *inside* the evaluation. To fan whole
    /// evaluations out across threads, give each worker its own scratch
    /// cache via [`crate::evaluate_with_scratch`].
    pub fn evaluate_limited_rt(
        &self,
        graph: &Graph,
        cache: &mut EvalCache,
        seed: &FxHashMap<Symbol, NodeId>,
        mode: PlannerMode,
        limit: Option<usize>,
        rt: &Runtime,
    ) -> Result<NodeBindings> {
        self.eval_planned(graph, cache, seed, mode, limit, rt)
    }

    fn eval_planned(
        &self,
        graph: &Graph,
        cache: &mut EvalCache,
        seed: &FxHashMap<Symbol, NodeId>,
        mode: PlannerMode,
        limit: Option<usize>,
        rt: &Runtime,
    ) -> Result<NodeBindings> {
        let mut backed = PreparedRelCache {
            inner: cache,
            pool: &self.pool,
        };
        planned_eval(graph, &self.query, &mut backed, seed, mode, limit, rt)
    }
}

/// [`RelCache`] adapter splitting the two cache roles: materialized
/// relations live in the caller's per-graph [`EvalCache`], compiled demand
/// evaluators come from the prepared query's own pool (`demand_ensure`
/// becomes a lookup — the pool was populated at construction, so nothing
/// compiles on the evaluation path).
struct PreparedRelCache<'a> {
    inner: &'a mut EvalCache,
    pool: &'a DemandPool,
}

impl RelCache for PreparedRelCache<'_> {
    fn ensure(&mut self, graph: &Graph, r: &Nre, rt: &Runtime) {
        EvalCache::ensure_rt(self.inner, graph, r, rt);
    }
    fn get(&self, r: &Nre) -> Option<&BinRel> {
        EvalCache::get(self.inner, r)
    }
    fn demand_ensure(&mut self, r: &Nre) -> bool {
        self.pool.compiled(r)
    }
    fn demand_get(&self, r: &Nre) -> Option<&RefCell<DemandEvaluator>> {
        self.pool.get(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdx_common::FxHashSet;
    use gdx_graph::Node;

    fn g1() -> Graph {
        Graph::parse("(c1, f, _N); (c3, f, _N); (_N, f, c2); (_N, h, hx); (_N, h, hy);").unwrap()
    }

    fn row_set(b: &NodeBindings) -> FxHashSet<Vec<NodeId>> {
        b.rows().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn prepared_agrees_with_free_evaluation_across_shapes() {
        let g = g1();
        for text in [
            "(x, h, y)",
            "(x1, f.f*.[h].f-.(f-)*, x2)",
            "(x, f, y), (y, h, \"hx\")",
            "(\"c1\", f.f, \"c2\")",
        ] {
            let q = PreparedQuery::parse(text).unwrap();
            #[allow(deprecated)]
            let free = crate::evaluate(&g, q.cnre()).unwrap();
            assert_eq!(row_set(&q.evaluate(&g).unwrap()), row_set(&free), "{text}");
            assert_eq!(q.evaluate_exists(&g).unwrap(), !free.is_empty(), "{text}");
        }
    }

    #[test]
    fn one_prepared_query_serves_many_graphs() {
        let q = PreparedQuery::parse("(x, f, y), (y, h, z)").unwrap();
        let with = g1();
        let without = Graph::parse("(a, f, b);").unwrap();
        assert_eq!(q.evaluate(&with).unwrap().len(), 4);
        assert!(q.evaluate(&without).unwrap().is_empty());
        // …and the same graph again after it grew (epoch advance).
        let mut grown = without;
        let b = grown.node_id(Node::cst("b")).unwrap();
        let p = grown.add_const("p");
        grown.add_edge_labelled(b, "h", p);
        assert_eq!(q.evaluate(&grown).unwrap().len(), 1);
    }

    #[test]
    fn seeded_and_mode_variants_agree() {
        let g = g1();
        let q = PreparedQuery::parse("(x, f, y), (y, h, z)").unwrap();
        let c1 = g.node_id(Node::cst("c1")).unwrap();
        let mut seed = FxHashMap::default();
        seed.insert(Symbol::new("x"), c1);
        let mut cache = EvalCache::new();
        let auto = q.evaluate_seeded(&g, &mut cache, &seed).unwrap();
        let mut cache2 = EvalCache::new();
        let mat = q
            .evaluate_seeded_mode(&g, &mut cache2, &seed, PlannerMode::Materialize)
            .unwrap();
        assert_eq!(row_set(&auto), row_set(&mat));
        assert_eq!(auto.len(), 2);
        let mut cache3 = EvalCache::new();
        assert!(q.evaluate_seeded_exists(&g, &mut cache3, &seed).unwrap());
    }

    #[test]
    fn limit_caps_answer_rows() {
        let g = g1();
        let q = PreparedQuery::parse("(x, h, y)").unwrap();
        let mut cache = EvalCache::new();
        let capped = q
            .evaluate_limited(
                &g,
                &mut cache,
                &FxHashMap::default(),
                PlannerMode::Auto,
                Some(1),
            )
            .unwrap();
        assert_eq!(capped.len(), 1);
        assert_eq!(q.matches(&g, &mut cache).unwrap().len(), 2);
    }

    #[test]
    fn parse_validates_eagerly() {
        assert!(PreparedQuery::parse("(x, f y)").is_err());
        assert!(PreparedQuery::parse("").is_err());
    }

    #[test]
    fn single_matches_paper_shape() {
        let q = PreparedQuery::single(
            Term::cst("c1"),
            gdx_nre::parse::parse_nre("f.f").unwrap(),
            Term::cst("c2"),
        );
        assert!(q.evaluate_exists(&g1()).unwrap());
        assert!(q.variables().is_empty());
    }
}
