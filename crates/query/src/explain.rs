//! Explainable planning: the cost-model narrative behind `plan_query`.
//!
//! [`explain_query`] replays the planner's greedy loop
//! (`plan_query_traced` in `plan.rs`) and records, for every atom in
//! placement order, the numbers the decision was made from: estimated
//! materialization size (`est_pairs`), estimated per-binding fanout,
//! the binding count flowing into the atom, and the resulting demand
//! cost. The decisions are *the* planner's decisions — both entry
//! points share one loop, so an explain can never drift from what
//! evaluation actually does.
//!
//! Renderings are deterministic: atom order is the join order, numbers
//! are formatted by a fixed rule (two decimals, trailing zeros
//! trimmed), and no wall-clock or pointer-derived state is involved.
//! `gdx explain` prints [`PlanExplain::render_text`];
//! `--format json` prints [`PlanExplain::render_json`].

use crate::cnre::Cnre;
use crate::plan::{plan_query_traced, AccessChoice, PlannerMode};
use gdx_common::{FxHashSet, Symbol};
use gdx_graph::Graph;

/// One placement decision from the planner's greedy loop.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomExplain {
    /// Atom index in the query text (not the placement position).
    pub atom: usize,
    /// The atom rendered back to query syntax, e.g. `(x, f.f*, y)`.
    pub pattern: String,
    /// Endpoints bound at placement time (constants always count).
    pub bound_endpoints: usize,
    /// Estimated size of the materialized relation `⟦r⟧_G`.
    pub est_pairs: f64,
    /// Estimated nodes reached per binding by one BFS step bundle.
    pub est_fanout: f64,
    /// Estimated bindings flowing into the atom from earlier placements.
    pub est_rows_in: f64,
    /// Estimated cost of answering via seeded product-BFS.
    pub demand_cost: f64,
    /// The access path the planner picked.
    pub choice: AccessChoice,
}

/// A full plan explanation: every atom's decision, in join order.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanExplain {
    /// The mode the plan was made under.
    pub mode: PlannerMode,
    /// Decisions in placement (join) order.
    pub atoms: Vec<AtomExplain>,
}

/// Plans `query` over `graph` exactly as evaluation would and returns
/// the per-atom decision log. `bound` is the set of variables fixed
/// before the join starts (empty for a free evaluation).
pub fn explain_query(
    graph: &Graph,
    query: &Cnre,
    bound: &FxHashSet<Symbol>,
    mode: PlannerMode,
) -> PlanExplain {
    let mut atoms = Vec::with_capacity(query.atoms.len());
    plan_query_traced(graph, query, bound, mode, Some(&mut atoms));
    PlanExplain { mode, atoms }
}

impl PlanExplain {
    fn mode_label(&self) -> &'static str {
        match self.mode {
            PlannerMode::Auto => "auto",
            PlannerMode::Materialize => "materialize",
        }
    }

    /// Human-readable table, one line per atom in join order.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "plan mode={} atoms={}\n",
            self.mode_label(),
            self.atoms.len()
        );
        for (step, a) in self.atoms.iter().enumerate() {
            out.push_str(&format!(
                "{:>3}. atom {} {}\n     bound={} est_pairs={} est_fanout={} rows_in={} \
                 demand_cost={} -> {}\n",
                step + 1,
                a.atom,
                a.pattern,
                a.bound_endpoints,
                fmt_est(a.est_pairs),
                fmt_est(a.est_fanout),
                fmt_est(a.est_rows_in),
                fmt_est(a.demand_cost),
                a.choice.label(),
            ));
        }
        out
    }

    /// Stable JSON rendering (atoms in join order, keys in fixed order).
    pub fn render_json(&self) -> String {
        let mut out = format!("{{\"mode\": \"{}\", \"atoms\": [", self.mode_label());
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"atom\": {}, \"pattern\": \"{}\", \"bound_endpoints\": {}, \
                 \"est_pairs\": {}, \"est_fanout\": {}, \"est_rows_in\": {}, \
                 \"demand_cost\": {}, \"choice\": \"{}\"}}",
                a.atom,
                escape_json(&a.pattern),
                a.bound_endpoints,
                fmt_est(a.est_pairs),
                fmt_est(a.est_fanout),
                fmt_est(a.est_rows_in),
                fmt_est(a.demand_cost),
                a.choice.label(),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Formats an estimate with two decimals, trimming trailing zeros (and
/// the dot) so whole numbers print as integers. Estimates are clamped
/// to `[1, 1e15]` by the cost model, so plain fixed-point is exact
/// enough and stays stable across platforms.
fn fmt_est(v: f64) -> String {
    let s = format!("{v:.2}");
    let trimmed = s.trim_end_matches('0').trim_end_matches('.');
    trimmed.to_string()
}

/// Minimal JSON string escaping: the atom rendering only ever contains
/// quotes (around constants) and plain ASCII from the query syntax.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdx_graph::NodeId;

    fn chain_graph(n: usize) -> Graph {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..n).map(|i| g.add_const(&format!("v{i}"))).collect();
        for w in ids.windows(2) {
            g.add_edge_labelled(w[0], "f", w[1]);
        }
        g
    }

    #[test]
    fn explain_mirrors_the_planner() {
        let g = chain_graph(200);
        let q = Cnre::parse("(\"v0\", f.f, \"v2\"), (x, f, y)").unwrap();
        let ex = explain_query(&g, &q, &FxHashSet::default(), PlannerMode::Auto);
        assert_eq!(ex.atoms.len(), 2);
        // The doubly-bound constant atom is placed first and takes demand.
        assert_eq!(ex.atoms[0].atom, 0);
        assert_eq!(ex.atoms[0].bound_endpoints, 2);
        assert_eq!(ex.atoms[0].choice, AccessChoice::Demand);
        // The free atom materializes.
        assert_eq!(ex.atoms[1].atom, 1);
        assert_eq!(ex.atoms[1].choice, AccessChoice::Materialize);
        // Forced materialization flips every choice.
        let forced = explain_query(&g, &q, &FxHashSet::default(), PlannerMode::Materialize);
        assert!(forced
            .atoms
            .iter()
            .all(|a| a.choice == AccessChoice::Materialize));
    }

    #[test]
    fn renderings_are_stable() {
        let g = chain_graph(200);
        let q = Cnre::parse("(\"v0\", f.f, \"v2\")").unwrap();
        let ex = explain_query(&g, &q, &FxHashSet::default(), PlannerMode::Auto);
        let text = ex.render_text();
        assert!(text.starts_with("plan mode=auto atoms=1\n"), "{text}");
        assert!(text.contains("-> demand"), "{text}");
        let json = ex.render_json();
        assert!(
            json.starts_with("{\"mode\": \"auto\", \"atoms\": ["),
            "{json}"
        );
        assert!(
            json.contains("\"pattern\": \"(\\\"v0\\\", f.f, \\\"v2\\\")\""),
            "{json}"
        );
        assert!(json.contains("\"choice\": \"demand\""), "{json}");
        // Byte-for-byte reproducible.
        assert_eq!(json, ex.render_json());
        assert_eq!(text, ex.render_text());
    }

    #[test]
    fn fmt_est_trims() {
        assert_eq!(fmt_est(1.0), "1");
        assert_eq!(fmt_est(2.5), "2.5");
        assert_eq!(fmt_est(7.389_06), "7.39");
        assert_eq!(fmt_est(199.0), "199");
    }
}
