//! Access-path planning: materialized `BinRel` vs. seeded product-BFS.
//!
//! The paper's hot queries — tgd head-satisfaction probes, egd premise
//! checks, certain-answer tests — arrive with one or both endpoints of
//! most atoms already bound (seeded variables or constants). Materializing
//! `⟦r⟧_G` per atom pays up to `O(|V|²)` regardless; a demand-driven
//! product-BFS ([`gdx_nre::demand`]) pays only for the slice reachable
//! from the bound endpoint. Neither dominates: a BFS per binding loses
//! when the join funnels thousands of bindings through an atom whose full
//! relation is small.
//!
//! `plan_query` therefore walks the atoms greedily (bound endpoints
//! first, selective atoms early — mirroring the materializing join order)
//! and picks one `AccessChoice` per atom from a small cost model over
//! [`Graph::label_stats`]:
//!
//! * `est_pairs(r)` — Σ label counts of `r`'s symbols, plus `|V|` when `r`
//!   is nullable (identity pairs), times `√|V|` when `r` is starred
//!   (closure amplification). The materialization cost and the size
//!   surrogate for join ordering.
//! * `demand_cost(r)` — (estimated bindings flowing into the atom) ×
//!   (automaton size ≈ `r.size()`) × (average fanout of `r`'s labels + 1).
//!
//! An atom with at least one bound endpoint takes the demand path when
//! `demand_cost < est_pairs`; everything else materializes. The estimated
//! binding count starts at 1 (the seed row) and grows by the estimated
//! fanout of each placed atom, so a join that explodes upstream falls
//! back to materialization downstream. Expressions the demand compiler
//! rejects ([`gdx_nre::demand::MAX_STATES`]) are flipped back to
//! materialization at execution time.

use crate::cnre::Cnre;
use crate::explain::AtomExplain;
use gdx_common::{FxHashSet, Symbol, Term};
use gdx_graph::Graph;
use gdx_nre::Nre;

/// Evaluation strategy selector for the planned entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerMode {
    /// Cost-based choice between materialization and product-BFS.
    #[default]
    Auto,
    /// Always materialize (the pre-planner behaviour; baseline for
    /// benches and the reference oracle for tests).
    Materialize,
}

/// Per-atom access path chosen by the planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessChoice {
    /// Full `⟦r⟧_G` via the (incremental or cold) materializing cache.
    Materialize,
    /// Seeded product-BFS from whichever endpoint is bound.
    Demand,
}

impl AccessChoice {
    /// Stable lowercase label used by explain renderings.
    pub fn label(self) -> &'static str {
        match self {
            AccessChoice::Materialize => "materialize",
            AccessChoice::Demand => "demand",
        }
    }
}

/// A join order plus one access choice per atom (indexed by atom
/// position, not order position).
#[derive(Debug)]
pub(crate) struct QueryPlan {
    pub order: Vec<usize>,
    pub access: Vec<AccessChoice>,
}

/// Upper bound used when clamping estimates into sort keys.
const EST_CAP: f64 = 1e15;

fn has_star(r: &Nre) -> bool {
    match r {
        Nre::Epsilon | Nre::Label(_) | Nre::Inverse(_) => false,
        Nre::Union(a, b) | Nre::Concat(a, b) => has_star(a) || has_star(b),
        Nre::Star(_) => true,
        Nre::Test(a) => has_star(a),
    }
}

/// Estimated size of `⟦r⟧_G` from the graph's per-label statistics.
fn est_pairs(graph: &Graph, r: &Nre) -> f64 {
    let nodes = graph.node_count() as f64;
    let mut est: f64 = r
        .symbols()
        .iter()
        .map(|s| graph.label_count(*s) as f64)
        .sum();
    if r.nullable() {
        est += nodes;
    }
    if has_star(r) {
        est *= nodes.sqrt().max(1.0);
    }
    est.clamp(1.0, EST_CAP)
}

/// Estimated nodes reached by one seeded BFS step bundle: the average
/// out-degree of the mentioned labels, plus one for staying in place.
fn est_fanout(graph: &Graph, r: &Nre) -> f64 {
    let nodes = (graph.node_count() as f64).max(1.0);
    let edges: f64 = r
        .symbols()
        .iter()
        .map(|s| graph.label_count(*s) as f64)
        .sum();
    (edges / nodes + 1.0).clamp(1.0, EST_CAP)
}

/// Estimated cost of answering the atom by product-BFS for `rows`
/// incoming bindings.
fn demand_cost(graph: &Graph, r: &Nre, rows: f64) -> f64 {
    (rows * r.size() as f64 * est_fanout(graph, r)).min(EST_CAP)
}

/// Plans the join order and per-atom access paths. `bound` is the set of
/// variables fixed before the join starts (the seed); constants count as
/// bound endpoints throughout.
pub(crate) fn plan_query(
    graph: &Graph,
    query: &Cnre,
    bound: &FxHashSet<Symbol>,
    mode: PlannerMode,
) -> QueryPlan {
    plan_query_traced(graph, query, bound, mode, None)
}

/// The planning loop, optionally narrating each placement into `trace`.
/// `plan_query` passes `None` (no per-decision strings are built on the
/// hot path); [`crate::explain`] passes a buffer and renders it.
pub(crate) fn plan_query_traced(
    graph: &Graph,
    query: &Cnre,
    bound: &FxHashSet<Symbol>,
    mode: PlannerMode,
    mut trace: Option<&mut Vec<AtomExplain>>,
) -> QueryPlan {
    let n = query.atoms.len();
    let mut bound = bound.clone();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut access: Vec<AccessChoice> = vec![AccessChoice::Materialize; n];
    let mut est_rows: f64 = 1.0;

    let endpoint_bound = |t: &Term, bound: &FxHashSet<Symbol>| match t {
        Term::Const(_) => true,
        Term::Var(v) => bound.contains(v),
    };

    while let Some((pos, &best)) = remaining.iter().enumerate().max_by_key(|(_, &i)| {
        let a = &query.atoms[i];
        let b = usize::from(endpoint_bound(&a.left, &bound))
            + usize::from(endpoint_bound(&a.right, &bound));
        let size = est_pairs(graph, &a.nre) as u64;
        (b, u64::MAX - size)
    }) {
        let atom = &query.atoms[best];
        let bound_endpoints = usize::from(endpoint_bound(&atom.left, &bound))
            + usize::from(endpoint_bound(&atom.right, &bound));
        let mat = est_pairs(graph, &atom.nre);
        let fanout = est_fanout(graph, &atom.nre);
        let demand = demand_cost(graph, &atom.nre, est_rows);
        if mode == PlannerMode::Auto && bound_endpoints >= 1 && demand < mat {
            access[best] = AccessChoice::Demand;
        }
        if let Some(out) = trace.as_deref_mut() {
            out.push(AtomExplain {
                atom: best,
                pattern: atom.to_string(),
                bound_endpoints,
                est_pairs: mat,
                est_fanout: fanout,
                est_rows_in: est_rows,
                demand_cost: demand,
                choice: access[best],
            });
        }
        est_rows = match bound_endpoints {
            2 => est_rows,
            1 => (est_rows * fanout).min(EST_CAP),
            _ => (est_rows * mat).min(EST_CAP),
        };
        bound.extend(atom.variables());
        order.push(best);
        remaining.swap_remove(pos);
    }
    QueryPlan { order, access }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdx_graph::NodeId;

    fn chain_graph(n: usize) -> Graph {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..n).map(|i| g.add_const(&format!("v{i}"))).collect();
        for w in ids.windows(2) {
            g.add_edge_labelled(w[0], "f", w[1]);
        }
        g
    }

    #[test]
    fn constants_pick_demand_on_large_graphs() {
        let g = chain_graph(200);
        let q = Cnre::parse("(\"v0\", f.f, \"v2\")").unwrap();
        let p = plan_query(&g, &q, &FxHashSet::default(), PlannerMode::Auto);
        assert_eq!(p.access, vec![AccessChoice::Demand]);
        // Forced materialization overrides the cost model.
        let m = plan_query(&g, &q, &FxHashSet::default(), PlannerMode::Materialize);
        assert_eq!(m.access, vec![AccessChoice::Materialize]);
    }

    #[test]
    fn unbound_atoms_materialize() {
        let g = chain_graph(200);
        let q = Cnre::parse("(x, f, y)").unwrap();
        let p = plan_query(&g, &q, &FxHashSet::default(), PlannerMode::Auto);
        assert_eq!(p.access, vec![AccessChoice::Materialize]);
    }

    #[test]
    fn seeded_variable_counts_as_bound() {
        let g = chain_graph(200);
        let q = Cnre::parse("(x, f, y), (y, f, z)").unwrap();
        let mut seed = FxHashSet::default();
        seed.insert(Symbol::new("x"));
        let p = plan_query(&g, &q, &seed, PlannerMode::Auto);
        assert_eq!(p.access, vec![AccessChoice::Demand, AccessChoice::Demand]);
        // The seeded atom is placed first.
        assert_eq!(p.order[0], 0);
    }

    #[test]
    fn estimates_respect_label_stats() {
        let mut g = chain_graph(50);
        for i in 0..40 {
            let a = g.add_const(&format!("h{i}"));
            let b = g.add_const(&format!("k{i}"));
            g.add_edge_labelled(a, "dense", b);
        }
        let sparse = Nre::label("f");
        let dense = Nre::label("dense");
        assert!(est_pairs(&g, &sparse) > est_pairs(&g, &Nre::label("absent")));
        assert!(est_pairs(&g, &dense) < est_pairs(&g, &sparse.clone().star()));
        assert!(est_fanout(&g, &sparse) >= 1.0);
    }
}
