//! # gdx-query
//!
//! Conjunctions of nested regular expressions (CNREs) — the target-side
//! query language, used for (i) the right-hand sides of s-t tgds, (ii) the
//! bodies of target constraints, and (iii) the queries of the
//! query-answering problem.
//!
//! A CNRE is a conjunction of atoms `(t, r, t')` where `t, t'` are
//! variables or constants and `r` is an NRE; its answers over a graph `G`
//! are the assignments of nodes to variables such that every atom's pair is
//! in `⟦r⟧_G`.
//!
//! * [`Cnre`] / [`CnreAtom`] — the query type with a text format
//!   `(x1, f.f*, y), (y, h, x4)` (quoted names are constants);
//! * [`PreparedQuery`] — parse + validate once, pre-compile the demand
//!   automata, evaluate many times (across graphs and epochs); the
//!   primary evaluation surface;
//! * [`eval`] — the join core over per-atom *access paths*: materialized
//!   relations or seeded product-BFS, chosen by the cost model in
//!   [`plan`] (bound endpoints and label selectivity from
//!   [`gdx_graph::Graph::label_stats`]). The free `evaluate*` functions
//!   are deprecated one-shot wrappers kept for downstream code;
//! * [`seminaive`] — delta-driven evaluation for the chase:
//!   [`SemiNaiveState::delta_matches`] returns only the matches that did
//!   not exist at the previous call, via `⋃ᵢ (Δᵢ ⋈ full others)` on top of
//!   the incremental NRE evaluator.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]

pub mod cnre;
pub mod eval;
pub mod explain;
pub mod plan;
pub mod prepared;
pub mod seminaive;

pub use cnre::{Cnre, CnreAtom};
#[allow(deprecated)]
pub use eval::{
    evaluate, evaluate_exists, evaluate_seeded, evaluate_seeded_exists, evaluate_seeded_mode,
    evaluate_with_cache,
};
pub use eval::{evaluate_with_scratch, NodeBindings, Rows};
pub use explain::{explain_query, AtomExplain, PlanExplain};
pub use plan::{AccessChoice, PlannerMode};
pub use prepared::PreparedQuery;
pub use seminaive::{
    evaluate_seeded_incremental, evaluate_seeded_incremental_exists, SemiNaiveState,
};
