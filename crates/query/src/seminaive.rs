//! Semi-naive CNRE evaluation: only the *new* matches since last time.
//!
//! For a body `A₁ ∧ … ∧ Aₖ` whose per-atom relations grew by `Δ₁ … Δₖ`
//! since the previous evaluation, every new match must use at least one
//! new pair, so
//!
//! ```text
//! Δmatches = ⋃ᵢ (Δᵢ ⋈ full others)
//! ```
//!
//! (matches hit by several deltas are deduplicated). The per-atom
//! relations and deltas come from the incremental NRE evaluator
//! ([`gdx_nre::incremental`]); the joins reuse the same slot/greedy-order
//! machinery as the full evaluator, with the delta atom forced first.
//!
//! [`SemiNaiveState`] is the per-rule persistent structure the chase keeps
//! alive across rounds: an [`IncrementalCache`] for the body's NREs plus
//! one [`EvalMark`] per atom. Graph replacement (clone, quotient) is
//! detected via [`Graph::id`] and degrades the next call to a full
//! evaluation — never to a silently truncated delta.

use crate::cnre::Cnre;
use crate::eval::{
    greedy_order, join_access, planned_eval, resolve_slots, AtomAccess, NodeBindings, RowBuf,
};
use crate::plan::PlannerMode;
use gdx_common::{FxHashMap, FxHashSet, Result, Symbol};
use gdx_graph::{Graph, NodeId};
use gdx_nre::incremental::{EvalMark, IncrementalCache};
use gdx_nre::BinRel;
use gdx_runtime::Runtime;

/// Minimum delta pairs per worker chunk before a delta join fans out.
const PAR_MIN_DELTA: usize = 512;

/// Persistent semi-naive evaluation state for one rule body.
///
/// Feed it the *same* query on every call; the state is keyed by atom
/// position, so swapping queries mid-stream would mix up the marks (a
/// debug assertion guards the atom count).
#[derive(Debug, Default)]
pub struct SemiNaiveState {
    cache: IncrementalCache,
    marks: Vec<EvalMark>,
}

impl SemiNaiveState {
    /// Fresh state: the first [`SemiNaiveState::delta_matches`] call
    /// returns every match.
    pub fn new() -> SemiNaiveState {
        SemiNaiveState::default()
    }

    /// The matches of `query` over `graph` that did **not** exist at the
    /// previous call (first call: all matches). Works in O(Δ ⋈ …) rather
    /// than re-evaluating the full body.
    pub fn delta_matches(&mut self, graph: &Graph, query: &Cnre) -> Result<NodeBindings> {
        self.delta_matches_rt(graph, query, &Runtime::sequential())
    }

    /// [`SemiNaiveState::delta_matches`] with an explicit [`Runtime`]:
    /// each atom's delta window is sharded into contiguous pair chunks and
    /// the `Δᵢ ⋈ full others` join runs once per chunk on its own worker.
    /// Chunk results concatenate in window order, so the returned rows —
    /// order included — are byte-identical to the 1-worker join (the
    /// chase's firing order and fresh-null naming depend on this).
    pub fn delta_matches_rt(
        &mut self,
        graph: &Graph,
        query: &Cnre,
        rt: &Runtime,
    ) -> Result<NodeBindings> {
        query.validate(None)?;
        let vars = query.variables();
        let n = query.atoms.len();
        debug_assert!(
            self.marks.is_empty() || self.marks.len() == n,
            "SemiNaiveState must be fed a fixed query"
        );
        self.marks.resize(n, EvalMark::ZERO);

        // Phase 1: advance every atom's relation to the current epoch.
        for atom in &query.atoms {
            self.cache.ensure(graph, &atom.nre);
        }
        // Every atom was ensured in the loop above; a miss is a cache bug.
        #[allow(clippy::expect_used)]
        let rels: Vec<&BinRel> = query
            .atoms
            .iter()
            .map(|a| self.cache.get(&a.nre).expect("ensured"))
            .collect();

        // Per-atom delta windows [from, to) into the relation logs.
        let windows: Vec<(usize, usize)> = rels
            .iter()
            .zip(&self.marks)
            .map(|(rel, mark)| (mark.position(graph), rel.mark()))
            .collect();
        let new_marks: Vec<EvalMark> = rels
            .iter()
            .map(|rel| EvalMark::capture(graph, rel))
            .collect();

        // A constant absent from the graph: no atom resolution, hence no
        // matches. Marks still advance — any future pair involving a
        // later-created constant node necessarily postdates it, so it
        // arrives in a later delta window.
        let Some(slots) = resolve_slots(graph, query) else {
            self.marks = new_marks;
            return Ok(NodeBindings::empty(vars));
        };

        let mut rows = RowBuf::new(vars.len());
        for i in 0..n {
            let (from, to) = windows[i];
            if from >= to {
                continue;
            }
            #[cfg(not(feature = "fault-delta-window"))]
            let window = &rels[i].pairs_since(from)[..to - from];
            // Deliberate off-by-one for the gdx-sim detector-sharpness
            // self-test: the last delta pair is silently dropped, so the
            // semi-naive chase misses firings the naive oracle makes.
            #[cfg(feature = "fault-delta-window")]
            let window = &rels[i].pairs_since(from)[..(to - from).saturating_sub(1)];
            // Delta atom first, the rest greedily. The order is
            // chunk-independent: `greedy_order` excludes atom `i`, so it
            // only consults the *other* atoms' full relations.
            let bound: FxHashSet<Symbol> = query.atoms[i].variables().collect();
            let mut order = Vec::with_capacity(n);
            order.push(i);
            order.extend(greedy_order(query, &rels, bound, Some(i)));
            // Δᵢ ⋈ full others, one shard per contiguous pair chunk. A
            // match's position only depends on its triggering pair's
            // window position, so in-order concatenation reproduces the
            // single-shard row order exactly.
            let chunk_rows = rt.par_chunks(window, PAR_MIN_DELTA, |_, chunk| {
                let mut delta_rel = BinRel::new();
                for &(u, v) in chunk {
                    delta_rel.insert(u, v);
                }
                let mut term_rels: Vec<&BinRel> = rels.clone();
                term_rels[i] = &delta_rel;
                let access: Vec<AtomAccess> =
                    term_rels.iter().map(|r| AtomAccess::Mat(r)).collect();
                let mut binding: FxHashMap<Symbol, NodeId> = FxHashMap::default();
                let mut shard_rows = RowBuf::new(vars.len());
                join_access(
                    graph,
                    &access,
                    &slots,
                    &order,
                    0,
                    &mut binding,
                    &vars,
                    &mut shard_rows,
                    None,
                );
                shard_rows
            });
            for shard in chunk_rows {
                rows.append(shard);
            }
        }
        self.marks = new_marks;

        // Dedup within this delta (a match touched by two deltas appears
        // under both terms). Matches from *earlier* calls cannot
        // reappear: every term forces at least one pair from a delta
        // window, and a match all of whose pairs predate the window was
        // already reported.
        rows.dedup_preserving_order();
        Ok(NodeBindings::from_parts(vars, rows))
    }
}

/// Seeded evaluation backed by an [`IncrementalCache`] — the incremental
/// sibling of [`crate::evaluate_seeded`], used by the chase for
/// head-satisfaction checks so repeated checks advance materialized
/// relations instead of rebuilding them. Atoms the planner routes to the
/// demand path skip materialization entirely (product-BFS from the seeded
/// endpoint, memoized in the cache's demand pool).
pub fn evaluate_seeded_incremental(
    graph: &Graph,
    query: &Cnre,
    cache: &mut IncrementalCache,
    seed: &FxHashMap<Symbol, NodeId>,
) -> Result<NodeBindings> {
    planned_eval(
        graph,
        query,
        cache,
        seed,
        PlannerMode::Auto,
        None,
        &Runtime::sequential(),
    )
}

/// Existence probe under a seed against an [`IncrementalCache`]:
/// early-exits at the first satisfying row — the shape of the tgd chase's
/// head-satisfaction checks.
pub fn evaluate_seeded_incremental_exists(
    graph: &Graph,
    query: &Cnre,
    cache: &mut IncrementalCache,
    seed: &FxHashMap<Symbol, NodeId>,
) -> Result<bool> {
    Ok(!planned_eval(
        graph,
        query,
        cache,
        seed,
        PlannerMode::Auto,
        Some(1),
        &Runtime::sequential(),
    )?
    .is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepared::PreparedQuery;
    use gdx_common::FxHashSet;

    fn row_set(b: &NodeBindings) -> FxHashSet<Vec<NodeId>> {
        b.rows().map(|r| r.to_vec()).collect()
    }

    fn evaluate(graph: &Graph, query: &Cnre) -> Result<NodeBindings> {
        PreparedQuery::new(query.clone()).evaluate(graph)
    }

    #[test]
    fn first_call_returns_all_matches() {
        let g = Graph::parse("(c1, f, _N); (c3, f, _N); (_N, h, hx);").unwrap();
        let q = Cnre::parse("(x, f, y), (y, h, z)").unwrap();
        let mut state = SemiNaiveState::new();
        let delta = state.delta_matches(&g, &q).unwrap();
        let full = evaluate(&g, &q).unwrap();
        assert_eq!(row_set(&delta), row_set(&full));
        assert_eq!(delta.len(), 2);
    }

    #[test]
    fn deltas_partition_the_match_set() {
        let mut g = Graph::parse("(a, f, b);").unwrap();
        let q = Cnre::parse("(x, f, y), (y, h, z)").unwrap();
        let mut state = SemiNaiveState::new();
        let mut acc = row_set(&state.delta_matches(&g, &q).unwrap());
        assert!(acc.is_empty());

        let script: &[&[(&str, &str, &str)]] = &[
            &[("b", "h", "p")],
            &[("c", "f", "d"), ("d", "h", "p")],
            &[("b", "h", "q"), ("e", "f", "b")],
            &[],
        ];
        for batch in script {
            for &(s, l, d) in *batch {
                g.add_edge_consts(s, l, d);
            }
            let delta = state.delta_matches(&g, &q).unwrap();
            for row in delta.rows() {
                assert!(acc.insert(row.to_vec()), "match {row:?} reported twice");
            }
            let full = evaluate(&g, &q).unwrap();
            assert_eq!(acc, row_set(&full), "after batch {batch:?}");
        }
    }

    #[test]
    fn kleene_star_bodies_stay_exact() {
        let mut g = Graph::parse("(a, f, b);").unwrap();
        let q = Cnre::parse("(x, f.f*, y)").unwrap();
        let mut state = SemiNaiveState::new();
        let mut acc = row_set(&state.delta_matches(&g, &q).unwrap());
        for (s, l, d) in [("b", "f", "c"), ("c", "f", "a"), ("d", "f", "d")] {
            g.add_edge_consts(s, l, d);
            let delta = state.delta_matches(&g, &q).unwrap();
            for row in delta.rows() {
                assert!(acc.insert(row.to_vec()));
            }
            assert_eq!(acc, row_set(&evaluate(&g, &q).unwrap()));
        }
    }

    #[test]
    fn late_constants_are_not_lost() {
        // The query names constant "c9" before it exists; matches must
        // surface once it appears, even though earlier deltas advanced.
        let mut g = Graph::parse("(a, f, b);").unwrap();
        let q = Cnre::parse("(\"c9\", f, x)").unwrap();
        let mut state = SemiNaiveState::new();
        assert!(state.delta_matches(&g, &q).unwrap().is_empty());
        g.add_edge_consts("a", "f", "c");
        assert!(state.delta_matches(&g, &q).unwrap().is_empty());
        g.add_edge_consts("c9", "f", "z");
        let delta = state.delta_matches(&g, &q).unwrap();
        assert_eq!(delta.len(), 1);
    }

    #[test]
    fn graph_swap_resets_to_full_evaluation() {
        let g = Graph::parse("(a, f, b); (b, f, c);").unwrap();
        let q = Cnre::parse("(x, f, y)").unwrap();
        let mut state = SemiNaiveState::new();
        assert_eq!(state.delta_matches(&g, &q).unwrap().len(), 2);
        assert_eq!(state.delta_matches(&g, &q).unwrap().len(), 0);
        // Quotients/clones are new graph values: full re-evaluation.
        let g2 = g.clone();
        assert_eq!(state.delta_matches(&g2, &q).unwrap().len(), 2);
    }

    #[test]
    fn seeded_incremental_matches_seeded() {
        let g = Graph::parse("(c1, f, _N); (_N, h, hx); (_N, h, hy);").unwrap();
        let q = Cnre::parse("(x, f, y), (y, h, z)").unwrap();
        let mut inc = IncrementalCache::new();
        let mut seed = FxHashMap::default();
        seed.insert(
            Symbol::new("x"),
            g.node_id(gdx_graph::Node::cst("c1")).unwrap(),
        );
        let a = evaluate_seeded_incremental(&g, &q, &mut inc, &seed).unwrap();
        let mut cache = gdx_nre::eval::EvalCache::new();
        let b = PreparedQuery::new(q.clone())
            .evaluate_seeded(&g, &mut cache, &seed)
            .unwrap();
        assert_eq!(row_set(&a), row_set(&b));
        assert_eq!(a.len(), 2);
    }
}
