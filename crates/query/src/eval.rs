//! CNRE evaluation over graphs.
//!
//! Each distinct NRE is materialized once into a [`BinRel`] (memoized in an
//! [`EvalCache`]); atoms are then joined in a greedy order — constants and
//! already-bound variables first, smallest relations preferred.

use crate::cnre::{Cnre, CnreAtom};
use gdx_common::{FxHashMap, FxHashSet, Result, Symbol, Term};
use gdx_graph::{Graph, Node, NodeId};
use gdx_nre::eval::EvalCache;
use gdx_nre::BinRel;

/// Evaluation result: named columns over graph node ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeBindings {
    vars: Vec<Symbol>,
    rows: Vec<Box<[NodeId]>>,
}

impl NodeBindings {
    /// Column order.
    pub fn vars(&self) -> &[Symbol] {
        &self.vars
    }

    /// Rows aligned with [`NodeBindings::vars`].
    pub fn rows(&self) -> &[Box<[NodeId]>] {
        &self.rows
    }

    /// Number of answers.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no answer exists. For a constants-only (Boolean) query,
    /// `is_empty() == false` means *satisfied* (one empty row).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows translated to [`Node`]s via `graph`.
    pub fn node_rows<'a>(&'a self, graph: &'a Graph) -> impl Iterator<Item = Vec<Node>> + 'a {
        self.rows
            .iter()
            .map(move |r| r.iter().map(|&id| graph.node(id)).collect())
    }

    /// The answers projected to rows where *every* value is a constant —
    /// the candidate certain answers.
    pub fn constant_rows(&self, graph: &Graph) -> FxHashSet<Vec<Node>> {
        self.node_rows(graph)
            .filter(|row| row.iter().all(Node::is_const))
            .collect()
    }

    /// Membership of a full assignment.
    pub fn contains_row(&self, row: &[NodeId]) -> bool {
        self.rows.iter().any(|r| &**r == row)
    }

    pub(crate) fn from_parts(vars: Vec<Symbol>, rows: Vec<Box<[NodeId]>>) -> NodeBindings {
        NodeBindings { vars, rows }
    }
}

/// Evaluates `query` over `graph` with a fresh relation cache.
pub fn evaluate(graph: &Graph, query: &Cnre) -> Result<NodeBindings> {
    let mut cache = EvalCache::new();
    evaluate_with_cache(graph, query, &mut cache)
}

/// Evaluates `query` over `graph`, reusing `cache` across calls (the chase
/// evaluates the same constraint bodies repeatedly).
pub fn evaluate_with_cache(
    graph: &Graph,
    query: &Cnre,
    cache: &mut EvalCache,
) -> Result<NodeBindings> {
    evaluate_seeded(graph, query, cache, &FxHashMap::default())
}

/// Evaluates `query` with some variables pre-bound to graph nodes.
///
/// Used by the target-tgd chase to check whether a tgd head is already
/// satisfied under a body match: frontier variables are seeded, existential
/// variables are left free. Seeded variables appear in the output columns
/// with their fixed values.
pub fn evaluate_seeded(
    graph: &Graph,
    query: &Cnre,
    cache: &mut EvalCache,
    seed: &FxHashMap<Symbol, NodeId>,
) -> Result<NodeBindings> {
    // Two-phase borrow: materialize every distinct NRE, then collect the
    // shared references (no per-call relation clones).
    for atom in &query.atoms {
        cache.ensure(graph, &atom.nre);
    }
    let rels: Vec<&BinRel> = query
        .atoms
        .iter()
        .map(|a| cache.get(&a.nre).expect("ensured"))
        .collect();
    evaluate_with_rels(graph, query, &rels, seed)
}

/// Evaluates `query` against caller-provided per-atom relations (the
/// shared core behind the cached, seeded, and incremental entry points).
pub(crate) fn evaluate_with_rels(
    graph: &Graph,
    query: &Cnre,
    rels: &[&BinRel],
    seed: &FxHashMap<Symbol, NodeId>,
) -> Result<NodeBindings> {
    query.validate(None)?;
    let vars = query.variables();

    let Some(slots) = resolve_slots(graph, query) else {
        return Ok(NodeBindings {
            vars,
            rows: Vec::new(),
        });
    };

    let bound: FxHashSet<Symbol> = seed.keys().copied().collect();
    let order = greedy_order(query, rels, bound, None);

    let mut rows = Vec::new();
    let mut binding: FxHashMap<Symbol, NodeId> = seed.iter().map(|(&v, &id)| (v, id)).collect();
    // A seeded variable that never occurs in the query must not panic the
    // row builder; restrict the seed to query variables.
    binding.retain(|v, _| vars.contains(v));
    join(
        query,
        rels,
        &slots,
        &order,
        0,
        &mut binding,
        &vars,
        &mut rows,
    );
    let mut seen: FxHashSet<Box<[NodeId]>> = FxHashSet::default();
    rows.retain(|r| seen.insert(r.clone()));
    Ok(NodeBindings { vars, rows })
}

/// Resolves every atom's terms to slots; `None` when a constant is absent
/// from the graph (no atom can match, hence no answers).
pub(crate) fn resolve_slots(graph: &Graph, query: &Cnre) -> Option<Vec<(TermSlot, TermSlot)>> {
    let resolve = |t: &Term| -> Option<TermSlot> {
        match t {
            Term::Var(v) => Some(TermSlot::Var(*v)),
            Term::Const(c) => graph.node_id(Node::Const(*c)).map(TermSlot::Fixed),
        }
    };
    query
        .atoms
        .iter()
        .map(|atom| Some((resolve(&atom.left)?, resolve(&atom.right)?)))
        .collect()
}

/// Greedy atom order: prefer atoms whose variables are already bound (or
/// constant), then smaller relations. `exclude` removes one atom from the
/// ordering (the semi-naive driver places its delta atom first itself).
pub(crate) fn greedy_order(
    query: &Cnre,
    rels: &[&BinRel],
    mut bound: FxHashSet<Symbol>,
    exclude: Option<usize>,
) -> Vec<usize> {
    let n = query.atoms.len();
    let mut remaining: Vec<usize> = (0..n).filter(|&i| Some(i) != exclude).collect();
    let mut order: Vec<usize> = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let (pos, &best) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, &i)| {
                let a = &query.atoms[i];
                let shared = a.variables().filter(|v| bound.contains(v)).count();
                let fixed = [&a.left, &a.right].iter().filter(|t| !t.is_var()).count();
                (shared + fixed, usize::MAX - rels[i].len())
            })
            .expect("non-empty remaining");
        order.push(best);
        bound.extend(query.atoms[best].variables());
        remaining.swap_remove(pos);
    }
    order
}

#[derive(Clone, Copy)]
pub(crate) enum TermSlot {
    Var(Symbol),
    Fixed(NodeId),
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn join(
    query: &Cnre,
    rels: &[&BinRel],
    slots: &[(TermSlot, TermSlot)],
    order: &[usize],
    depth: usize,
    binding: &mut FxHashMap<Symbol, NodeId>,
    vars: &[Symbol],
    rows: &mut Vec<Box<[NodeId]>>,
) {
    if depth == order.len() {
        rows.push(vars.iter().map(|v| binding[v]).collect());
        return;
    }
    let ai = order[depth];
    let rel = rels[ai];
    let _atom: &CnreAtom = &query.atoms[ai];
    let (l, r) = slots[ai];
    let lv = match l {
        TermSlot::Fixed(id) => Some(id),
        TermSlot::Var(v) => binding.get(&v).copied(),
    };
    let rv = match r {
        TermSlot::Fixed(id) => Some(id),
        TermSlot::Var(v) => binding.get(&v).copied(),
    };
    match (lv, rv) {
        (Some(u), Some(w)) => {
            if rel.contains(u, w) {
                join(query, rels, slots, order, depth + 1, binding, vars, rows);
            }
        }
        (Some(u), None) => {
            let TermSlot::Var(rvar) = r else {
                unreachable!()
            };
            for &w in rel.image(u) {
                binding.insert(rvar, w);
                join(query, rels, slots, order, depth + 1, binding, vars, rows);
            }
            binding.remove(&rvar);
        }
        (None, Some(w)) => {
            let TermSlot::Var(lvar) = l else {
                unreachable!()
            };
            for &u in rel.preimage(w) {
                binding.insert(lvar, u);
                join(query, rels, slots, order, depth + 1, binding, vars, rows);
            }
            binding.remove(&lvar);
        }
        (None, None) => {
            let TermSlot::Var(lvar) = l else {
                unreachable!()
            };
            let TermSlot::Var(rvar) = r else {
                unreachable!()
            };
            if lvar == rvar {
                // Self-join on one variable: diagonal pairs only.
                for (u, w) in rel.iter() {
                    if u == w {
                        binding.insert(lvar, u);
                        join(query, rels, slots, order, depth + 1, binding, vars, rows);
                        binding.remove(&lvar);
                    }
                }
            } else {
                for (u, w) in rel.iter() {
                    binding.insert(lvar, u);
                    binding.insert(rvar, w);
                    join(query, rels, slots, order, depth + 1, binding, vars, rows);
                    binding.remove(&rvar);
                    binding.remove(&lvar);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g1() -> Graph {
        // Figure 1(a).
        Graph::parse("(c1, f, _N); (c3, f, _N); (_N, f, c2); (_N, h, hx); (_N, h, hy);").unwrap()
    }

    #[test]
    fn single_atom_query() {
        let g = g1();
        let q = Cnre::parse("(x, h, y)").unwrap();
        let b = evaluate(&g, &q).unwrap();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn papers_query_certainlike_eval() {
        let g = g1();
        let q = Cnre::parse("(x1, f.f*.[h].f-.(f-)*, x2)").unwrap();
        let b = evaluate(&g, &q).unwrap();
        let consts = b.constant_rows(&g);
        // JQK_G1 = {(c1,c1),(c1,c3),(c3,c1),(c3,c3)} — all constants.
        assert_eq!(b.len(), 4);
        assert_eq!(consts.len(), 4);
    }

    #[test]
    fn conjunction_join() {
        let g = g1();
        // Cities x with a flight to y that has hotel hx.
        let q = Cnre::parse("(x, f, y), (y, h, \"hx\")").unwrap();
        let b = evaluate(&g, &q).unwrap();
        assert_eq!(b.len(), 2, "c1→N and c3→N");
        let rows = b.constant_rows(&g);
        assert!(rows.is_empty(), "y is the null N in every answer");
    }

    #[test]
    fn boolean_query_constants_only() {
        let g = g1();
        let yes = Cnre::parse("(\"c1\", f.f, \"c2\")").unwrap();
        assert!(!evaluate(&g, &yes).unwrap().is_empty());
        let no = Cnre::parse("(\"c2\", f, \"c1\")").unwrap();
        assert!(evaluate(&g, &no).unwrap().is_empty());
    }

    #[test]
    fn missing_constant_gives_empty() {
        let g = g1();
        let q = Cnre::parse("(\"nope\", f, x)").unwrap();
        assert!(evaluate(&g, &q).unwrap().is_empty());
    }

    #[test]
    fn repeated_variable_in_atom() {
        let g = Graph::parse("(a, f, a); (a, f, b);").unwrap();
        let q = Cnre::parse("(x, f, x)").unwrap();
        let b = evaluate(&g, &q).unwrap();
        assert_eq!(b.len(), 1, "only the self-loop");
    }

    #[test]
    fn shared_variable_across_atoms() {
        let g = Graph::parse("(a, f, b); (b, g, c); (b, g, d); (x, g, y);").unwrap();
        let q = Cnre::parse("(u, f, v), (v, g, w)").unwrap();
        let b = evaluate(&g, &q).unwrap();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn eval_with_shared_cache() {
        let g = g1();
        let mut cache = EvalCache::new();
        let q = Cnre::parse("(x, f.f*, y)").unwrap();
        let a1 = evaluate_with_cache(&g, &q, &mut cache).unwrap();
        let a2 = evaluate_with_cache(&g, &q, &mut cache).unwrap();
        assert_eq!(a1, a2);
    }

    #[test]
    fn seeded_evaluation_fixes_variables() {
        let g = g1();
        let q = Cnre::parse("(x, f, y), (y, h, z)").unwrap();
        let mut cache = EvalCache::new();
        let c1 = g.node_id(Node::cst("c1")).unwrap();
        let mut seed = FxHashMap::default();
        seed.insert(Symbol::new("x"), c1);
        let b = crate::eval::evaluate_seeded(&g, &q, &mut cache, &seed).unwrap();
        // x fixed to c1: y = N, z ∈ {hx, hy}.
        assert_eq!(b.len(), 2);
        for row in b.rows() {
            assert_eq!(row[0], c1);
        }
        // Seeding an unused variable is harmless.
        seed.insert(Symbol::new("unused"), c1);
        let b2 = crate::eval::evaluate_seeded(&g, &q, &mut cache, &seed).unwrap();
        assert_eq!(b2.len(), 2);
    }

    #[test]
    fn egd_body_from_example_2_2() {
        // (x1, h, x3), (x2, h, x3): pairs of cities sharing a hotel.
        let g = Graph::parse("(_N1, h, hy); (_N2, h, hx); (_N3, h, hx);").unwrap();
        let q = Cnre::parse("(x1, h, x3), (x2, h, x3)").unwrap();
        let b = evaluate(&g, &q).unwrap();
        // Pairs over hy: (N1,N1). Over hx: (N2,N2),(N2,N3),(N3,N2),(N3,N3).
        assert_eq!(b.len(), 5);
    }
}
