//! CNRE evaluation over graphs.
//!
//! Evaluation is a join over per-atom *access paths*: each atom is served
//! either by a materialized [`BinRel`] (memoized in an [`EvalCache`] or
//! [`IncrementalCache`](gdx_nre::IncrementalCache)) or by a seeded
//! product-BFS [`DemandEvaluator`] — chosen per query by the cost model in
//! [`crate::plan`]. Atoms are joined in a greedy order: constants and
//! already-bound variables first, smaller (estimated or actual) relations
//! preferred.

use crate::cnre::Cnre;
use crate::plan::{plan_query, AccessChoice, PlannerMode};
use gdx_common::{FxHashMap, FxHashSet, Result, Symbol, Term};
use gdx_graph::{Graph, Node, NodeId};
use gdx_nre::demand::DemandEvaluator;
use gdx_nre::eval::EvalCache;
use gdx_nre::{BinRel, Nre};
use gdx_runtime::Runtime;
use std::cell::RefCell;

/// A flat, row-major buffer of answer rows — the data-plane half of
/// [`NodeBindings`], also used as the join's output sink.
///
/// All rows live in one `Vec<NodeId>` (`arity` values per row): pushing a
/// row is `arity` appends to one array instead of a boxed-slice
/// allocation per row, which matters because the chase materializes
/// millions of body-match rows per run. The row count is tracked
/// separately from the data length: a constants-only (Boolean) query has
/// arity 0 yet one (empty) row when satisfied.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct RowBuf {
    arity: usize,
    len: usize,
    data: Vec<NodeId>,
}

impl RowBuf {
    pub(crate) fn new(arity: usize) -> RowBuf {
        RowBuf {
            arity,
            len: 0,
            data: Vec::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Appends one row, reading each column's value from `binding`.
    pub(crate) fn push_from(&mut self, vars: &[Symbol], binding: &FxHashMap<Symbol, NodeId>) {
        debug_assert_eq!(vars.len(), self.arity);
        self.data.extend(vars.iter().map(|v| binding[v]));
        self.len += 1;
    }

    /// Concatenates `other`'s rows (same arity) after this buffer's.
    pub(crate) fn append(&mut self, other: RowBuf) {
        debug_assert_eq!(self.arity, other.arity);
        self.data.extend_from_slice(&other.data);
        self.len += other.len;
    }

    pub(crate) fn rows(&self) -> Rows<'_> {
        Rows {
            data: &self.data,
            arity: self.arity,
            remaining: self.len,
        }
    }

    #[inline]
    fn row(&self, i: usize) -> &[NodeId] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// Removes duplicate rows, keeping each row's **first** occurrence in
    /// place — the same visible semantics as the old
    /// `retain(|r| seen.insert(r))` hash dedup, without one hash probe
    /// and one boxed clone per row. Sorts an index array (ties broken by
    /// position, so the run leader *is* the first occurrence), then
    /// compacts the flat data in original order.
    pub(crate) fn dedup_preserving_order(&mut self) {
        if self.len <= 1 {
            return;
        }
        if self.arity == 0 {
            // Every row is the empty row.
            self.len = 1;
            return;
        }
        let mut idx: Vec<u32> = (0..self.len as u32).collect();
        idx.sort_unstable_by(|&a, &b| {
            self.row(a as usize)
                .cmp(self.row(b as usize))
                .then(a.cmp(&b))
        });
        let mut keep = vec![false; self.len];
        let mut i = 0;
        while i < idx.len() {
            keep[idx[i] as usize] = true;
            let mut j = i + 1;
            while j < idx.len() && self.row(idx[j] as usize) == self.row(idx[i] as usize) {
                j += 1;
            }
            i = j;
        }
        let mut write = 0usize;
        let mut kept = 0usize;
        for (r, &keep_row) in keep.iter().enumerate() {
            if keep_row {
                self.data
                    .copy_within(r * self.arity..(r + 1) * self.arity, write);
                write += self.arity;
                kept += 1;
            }
        }
        self.data.truncate(write);
        self.len = kept;
    }
}

/// Iterator over the rows of a [`NodeBindings`], yielding one
/// `&[NodeId]` slice per answer (aligned with [`NodeBindings::vars`]).
#[derive(Debug, Clone)]
pub struct Rows<'a> {
    data: &'a [NodeId],
    arity: usize,
    remaining: usize,
}

impl<'a> Iterator for Rows<'a> {
    type Item = &'a [NodeId];

    fn next(&mut self) -> Option<&'a [NodeId]> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let (head, tail) = self.data.split_at(self.arity);
        self.data = tail;
        Some(head)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for Rows<'_> {}

/// Evaluation result: named columns over graph node ids, stored row-major
/// in one flat array (`vars.len()` ids per answer — no per-row boxing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeBindings {
    vars: Vec<Symbol>,
    rows: RowBuf,
}

impl NodeBindings {
    /// Column order.
    pub fn vars(&self) -> &[Symbol] {
        &self.vars
    }

    /// The answer rows, each aligned with [`NodeBindings::vars`].
    pub fn rows(&self) -> Rows<'_> {
        self.rows.rows()
    }

    /// The `i`-th answer row.
    pub fn row(&self, i: usize) -> &[NodeId] {
        debug_assert!(i < self.rows.len());
        self.rows.row(i)
    }

    /// Number of answers.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no answer exists. For a constants-only (Boolean) query,
    /// `is_empty() == false` means *satisfied* (one empty row).
    pub fn is_empty(&self) -> bool {
        self.rows.len() == 0
    }

    /// Rows translated to [`Node`]s via `graph`.
    pub fn node_rows<'a>(&'a self, graph: &'a Graph) -> impl Iterator<Item = Vec<Node>> + 'a {
        self.rows()
            .map(move |r| r.iter().map(|&id| graph.node(id)).collect())
    }

    /// The answers projected to rows where *every* value is a constant —
    /// the candidate certain answers.
    pub fn constant_rows(&self, graph: &Graph) -> FxHashSet<Vec<Node>> {
        self.node_rows(graph)
            .filter(|row| row.iter().all(Node::is_const))
            .collect()
    }

    /// Membership of a full assignment.
    pub fn contains_row(&self, row: &[NodeId]) -> bool {
        self.rows().any(|r| r == row)
    }

    pub(crate) fn from_parts(vars: Vec<Symbol>, rows: RowBuf) -> NodeBindings {
        debug_assert_eq!(rows.arity, vars.len());
        NodeBindings { vars, rows }
    }

    pub(crate) fn empty(vars: Vec<Symbol>) -> NodeBindings {
        let rows = RowBuf::new(vars.len());
        NodeBindings { vars, rows }
    }
}

/// The cache interface planned evaluation draws on: materialized
/// relations plus compiled demand evaluators. Implemented by the cold
/// [`EvalCache`] and the epoch-advancing
/// [`IncrementalCache`](gdx_nre::IncrementalCache).
pub(crate) trait RelCache {
    /// Materializes `r`. The runtime partitions expensive constructions
    /// (star closures, compositions) across workers where the backing
    /// cache supports it; the cached relation is byte-identical either
    /// way.
    fn ensure(&mut self, graph: &Graph, r: &Nre, rt: &Runtime);
    fn get(&self, r: &Nre) -> Option<&BinRel>;
    fn demand_ensure(&mut self, r: &Nre) -> bool;
    fn demand_get(&self, r: &Nre) -> Option<&RefCell<DemandEvaluator>>;
}

impl RelCache for EvalCache {
    fn ensure(&mut self, graph: &Graph, r: &Nre, rt: &Runtime) {
        EvalCache::ensure_rt(self, graph, r, rt);
    }
    fn get(&self, r: &Nre) -> Option<&BinRel> {
        EvalCache::get(self, r)
    }
    fn demand_ensure(&mut self, r: &Nre) -> bool {
        EvalCache::demand_ensure(self, r)
    }
    fn demand_get(&self, r: &Nre) -> Option<&RefCell<DemandEvaluator>> {
        EvalCache::demand_get(self, r)
    }
}

impl RelCache for gdx_nre::IncrementalCache {
    // The incremental cache advances by log deltas (cheap by
    // construction), so it ignores the runtime rather than parallelize
    // per-delta work that rarely clears a chunk threshold.
    fn ensure(&mut self, graph: &Graph, r: &Nre, _rt: &Runtime) {
        gdx_nre::IncrementalCache::ensure(self, graph, r);
    }
    fn get(&self, r: &Nre) -> Option<&BinRel> {
        gdx_nre::IncrementalCache::get(self, r)
    }
    fn demand_ensure(&mut self, r: &Nre) -> bool {
        gdx_nre::IncrementalCache::demand_ensure(self, r)
    }
    fn demand_get(&self, r: &Nre) -> Option<&RefCell<DemandEvaluator>> {
        gdx_nre::IncrementalCache::demand_get(self, r)
    }
}

/// Evaluates `query` over `graph` with a fresh relation cache.
#[deprecated(note = "prepare the query once with `PreparedQuery::new` and call \
                     `PreparedQuery::evaluate`")]
pub fn evaluate(graph: &Graph, query: &Cnre) -> Result<NodeBindings> {
    let mut cache = EvalCache::new();
    planned_eval(
        graph,
        query,
        &mut cache,
        &FxHashMap::default(),
        PlannerMode::Auto,
        None,
        &Runtime::sequential(),
    )
}

/// Is `query` satisfiable over `graph`? Early-exits at the first answer
/// row; with a constants-only query this is the certain-answer probe shape
/// (both endpoints bound), which the planner serves by seeded product-BFS
/// instead of materializing any relation.
#[deprecated(note = "prepare the query once with `PreparedQuery::new` and call \
                     `PreparedQuery::evaluate_exists`")]
pub fn evaluate_exists(graph: &Graph, query: &Cnre) -> Result<bool> {
    let mut cache = EvalCache::new();
    let b = planned_eval(
        graph,
        query,
        &mut cache,
        &FxHashMap::default(),
        PlannerMode::Auto,
        Some(1),
        &Runtime::sequential(),
    )?;
    Ok(!b.is_empty())
}

/// Evaluates `query` over `graph`, reusing `cache` across calls (the chase
/// evaluates the same constraint bodies repeatedly).
#[deprecated(note = "prepare the query once with `PreparedQuery::new` and call \
                     `PreparedQuery::matches`")]
pub fn evaluate_with_cache(
    graph: &Graph,
    query: &Cnre,
    cache: &mut EvalCache,
) -> Result<NodeBindings> {
    planned_eval(
        graph,
        query,
        cache,
        &FxHashMap::default(),
        PlannerMode::Auto,
        None,
        &Runtime::sequential(),
    )
}

/// Evaluates `query` with some variables pre-bound to graph nodes.
///
/// Used by the target-tgd chase to check whether a tgd head is already
/// satisfied under a body match: frontier variables are seeded, existential
/// variables are left free. Seeded variables appear in the output columns
/// with their fixed values.
#[deprecated(note = "prepare the query once with `PreparedQuery::new` and call \
                     `PreparedQuery::evaluate_seeded`")]
pub fn evaluate_seeded(
    graph: &Graph,
    query: &Cnre,
    cache: &mut EvalCache,
    seed: &FxHashMap<Symbol, NodeId>,
) -> Result<NodeBindings> {
    planned_eval(
        graph,
        query,
        cache,
        seed,
        PlannerMode::Auto,
        None,
        &Runtime::sequential(),
    )
}

/// [`evaluate_seeded`] with an explicit planner mode —
/// [`PlannerMode::Materialize`] forces the pre-planner single-strategy
/// behaviour (the baseline the benches and equivalence tests compare
/// against).
#[deprecated(note = "prepare the query once with `PreparedQuery::new` and call \
                     `PreparedQuery::evaluate_seeded_mode`")]
pub fn evaluate_seeded_mode(
    graph: &Graph,
    query: &Cnre,
    cache: &mut EvalCache,
    seed: &FxHashMap<Symbol, NodeId>,
    mode: PlannerMode,
) -> Result<NodeBindings> {
    planned_eval(
        graph,
        query,
        cache,
        seed,
        mode,
        None,
        &Runtime::sequential(),
    )
}

/// Existence probe under a seed: early-exits at the first satisfying row.
#[deprecated(note = "prepare the query once with `PreparedQuery::new` and call \
                     `PreparedQuery::evaluate_seeded_exists`")]
pub fn evaluate_seeded_exists(
    graph: &Graph,
    query: &Cnre,
    cache: &mut EvalCache,
    seed: &FxHashMap<Symbol, NodeId>,
) -> Result<bool> {
    Ok(!planned_eval(
        graph,
        query,
        cache,
        seed,
        PlannerMode::Auto,
        Some(1),
        &Runtime::sequential(),
    )?
    .is_empty())
}

/// Planned evaluation against a caller-owned [`EvalCache`] — the
/// **per-worker-scratch** entry point of the parallel layers.
///
/// [`crate::PreparedQuery`] carries its compiled demand pool behind a
/// `RefCell`, so a prepared query cannot be shared across the
/// `gdx-runtime` worker threads. Parallel consumers (the chase's
/// speculative head pre-filter, the session's certain-answer fan-out over
/// the solution family) instead hand every worker the plain [`Cnre`] plus
/// that worker's own scratch cache: demand evaluators compile *into the
/// cache* on first use and stay warm for the worker's (or the graph's)
/// lifetime. Results are identical to the `PreparedQuery` methods — only
/// where the compiled automata live differs.
pub fn evaluate_with_scratch(
    graph: &Graph,
    query: &Cnre,
    cache: &mut EvalCache,
    seed: &FxHashMap<Symbol, NodeId>,
    mode: PlannerMode,
    limit: Option<usize>,
    rt: &Runtime,
) -> Result<NodeBindings> {
    planned_eval(graph, query, cache, seed, mode, limit, rt)
}

/// The planned evaluation core: pick access paths, ensure the chosen
/// backing (materialized relation or compiled demand evaluator) per atom,
/// then run the mixed join. `limit` stops the join after that many rows
/// (existence probes pass 1).
///
/// The runtime parallelizes two layers: relation materialization (through
/// [`RelCache::ensure`]) and — for unlimited, fully-materialized joins —
/// the outer loop of the join itself, partitioning the first atom's
/// candidate bindings across workers ([`parallel_outer_join`]). Both are
/// merged in input order, so the answer rows are byte-identical to a
/// 1-worker evaluation.
// The `expect("ensured")` cache lookups below follow the ensure pass over
// the same atoms; a miss is a planner/cache bug that a silent fallback
// would only hide.
#[allow(clippy::expect_used)]
pub(crate) fn planned_eval<C: RelCache>(
    graph: &Graph,
    query: &Cnre,
    cache: &mut C,
    seed: &FxHashMap<Symbol, NodeId>,
    mode: PlannerMode,
    limit: Option<usize>,
    rt: &Runtime,
) -> Result<NodeBindings> {
    query.validate(None)?;
    let vars = query.variables();
    let Some(slots) = resolve_slots(graph, query) else {
        return Ok(NodeBindings::empty(vars));
    };
    let bound: FxHashSet<Symbol> = seed.keys().copied().filter(|v| vars.contains(v)).collect();
    let mut plan = plan_query(graph, query, &bound, mode);
    for (i, atom) in query.atoms.iter().enumerate() {
        match plan.access[i] {
            AccessChoice::Demand => {
                // Outside the demand-evaluable fragment: flip back.
                if !cache.demand_ensure(&atom.nre) {
                    plan.access[i] = AccessChoice::Materialize;
                    cache.ensure(graph, &atom.nre, rt);
                }
            }
            AccessChoice::Materialize => cache.ensure(graph, &atom.nre, rt),
        }
    }
    let cache = &*cache;
    let access: Vec<AtomAccess> = query
        .atoms
        .iter()
        .enumerate()
        .map(|(i, a)| match plan.access[i] {
            AccessChoice::Materialize => AtomAccess::Mat(cache.get(&a.nre).expect("ensured")),
            AccessChoice::Demand => AtomAccess::Demand(cache.demand_get(&a.nre).expect("ensured")),
        })
        .collect();
    if mode == PlannerMode::Materialize {
        // The baseline mode reproduces the pre-planner behaviour exactly:
        // every relation is materialized above, so order by *actual*
        // relation sizes rather than the estimates.
        let rels: Vec<&BinRel> = query
            .atoms
            .iter()
            .map(|a| cache.get(&a.nre).expect("ensured"))
            .collect();
        plan.order = greedy_order(query, &rels, bound, None);
    }

    let mut binding: FxHashMap<Symbol, NodeId> = seed.iter().map(|(&v, &id)| (v, id)).collect();
    binding.retain(|v, _| vars.contains(v));
    let mut rows = match parallel_outer_join(
        graph,
        &access,
        &slots,
        &plan.order,
        &binding,
        &vars,
        limit,
        rt,
    ) {
        Some(rows) => rows,
        None => {
            let mut rows = RowBuf::new(vars.len());
            join_access(
                graph,
                &access,
                &slots,
                &plan.order,
                0,
                &mut binding,
                &vars,
                &mut rows,
                limit,
            );
            rows
        }
    };
    rows.dedup_preserving_order();
    Ok(NodeBindings::from_parts(vars, rows))
}

/// Minimum depth-0 candidates before the join outer loop fans out.
const PAR_MIN_OUTER: usize = 256;
/// Candidates per worker chunk once it does.
const PAR_OUTER_CHUNK: usize = 64;

/// One depth-0 extension of the join: the variable bindings the first
/// ordered atom contributes before recursion continues at depth 1.
enum OuterCand {
    One(Symbol, NodeId),
    Two(Symbol, NodeId, Symbol, NodeId),
}

/// Partitions the outer (depth-0) candidate set of a fully-materialized,
/// unlimited join across workers; each worker replays the exact recursion
/// the sequential join would run under its candidates, and per-chunk rows
/// concatenate in candidate order — byte-identical output.
///
/// Returns `None` (caller falls back to the sequential join) when: a
/// `limit` demands early exit, any atom took the demand access path (its
/// memoizing evaluator is deliberately single-threaded scratch), both
/// endpoints of the outer atom are already bound, or the candidate count
/// is below [`PAR_MIN_OUTER`].
#[allow(clippy::too_many_arguments)]
fn parallel_outer_join(
    graph: &Graph,
    access: &[AtomAccess],
    slots: &[(TermSlot, TermSlot)],
    order: &[usize],
    binding: &FxHashMap<Symbol, NodeId>,
    vars: &[Symbol],
    limit: Option<usize>,
    rt: &Runtime,
) -> Option<RowBuf> {
    if limit.is_some() || !rt.is_parallel() || order.is_empty() {
        return None;
    }
    // `AtomAccess` as a *type* cannot cross threads (its demand variant
    // holds a `RefCell`), so extract the all-materialized view first and
    // let each worker rebuild its own access vector from the Sync
    // relations.
    let mats: Vec<&BinRel> = access
        .iter()
        .map(|a| match a {
            AtomAccess::Mat(rel) => Some(*rel),
            AtomAccess::Demand(_) => None,
        })
        .collect::<Option<_>>()?;
    let ai = order[0];
    let (l, r) = slots[ai];
    let lv = match l {
        TermSlot::Fixed(id) => Some(id),
        TermSlot::Var(v) => binding.get(&v).copied(),
    };
    let rv = match r {
        TermSlot::Fixed(id) => Some(id),
        TermSlot::Var(v) => binding.get(&v).copied(),
    };
    let rel = mats[ai];
    let cands: Vec<OuterCand> = match (lv, rv) {
        (Some(_), Some(_)) => return None,
        (Some(u), None) => {
            let TermSlot::Var(rvar) = r else {
                unreachable!()
            };
            rel.image(u)
                .iter()
                .map(|&w| OuterCand::One(rvar, w))
                .collect()
        }
        (None, Some(w)) => {
            let TermSlot::Var(lvar) = l else {
                unreachable!()
            };
            rel.preimage(w)
                .iter()
                .map(|&u| OuterCand::One(lvar, u))
                .collect()
        }
        (None, None) => {
            let (TermSlot::Var(lvar), TermSlot::Var(rvar)) = (l, r) else {
                unreachable!()
            };
            if lvar == rvar {
                rel.iter()
                    .filter(|(u, w)| u == w)
                    .map(|(u, _)| OuterCand::One(lvar, u))
                    .collect()
            } else {
                rel.iter()
                    .map(|(u, w)| OuterCand::Two(lvar, u, rvar, w))
                    .collect()
            }
        }
    };
    if cands.len() < PAR_MIN_OUTER {
        return None;
    }
    let chunk_rows = rt.par_chunks(&cands, PAR_OUTER_CHUNK, |_, chunk| {
        let worker_access: Vec<AtomAccess> = mats.iter().map(|r| AtomAccess::Mat(r)).collect();
        let mut b = binding.clone();
        let mut rows = RowBuf::new(vars.len());
        for cand in chunk {
            match *cand {
                OuterCand::One(v, id) => {
                    b.insert(v, id);
                    join_access(
                        graph,
                        &worker_access,
                        slots,
                        order,
                        1,
                        &mut b,
                        vars,
                        &mut rows,
                        None,
                    );
                    b.remove(&v);
                }
                OuterCand::Two(lv, lid, rv, rid) => {
                    b.insert(lv, lid);
                    b.insert(rv, rid);
                    join_access(
                        graph,
                        &worker_access,
                        slots,
                        order,
                        1,
                        &mut b,
                        vars,
                        &mut rows,
                        None,
                    );
                    b.remove(&rv);
                    b.remove(&lv);
                }
            }
        }
        rows
    });
    let mut out = RowBuf::new(vars.len());
    for chunk in chunk_rows {
        out.append(chunk);
    }
    Some(out)
}

/// Resolves every atom's terms to slots; `None` when a constant is absent
/// from the graph (no atom can match, hence no answers).
pub(crate) fn resolve_slots(graph: &Graph, query: &Cnre) -> Option<Vec<(TermSlot, TermSlot)>> {
    let resolve = |t: &Term| -> Option<TermSlot> {
        match t {
            Term::Var(v) => Some(TermSlot::Var(*v)),
            Term::Const(c) => graph.node_id(Node::Const(*c)).map(TermSlot::Fixed),
        }
    };
    query
        .atoms
        .iter()
        .map(|atom| Some((resolve(&atom.left)?, resolve(&atom.right)?)))
        .collect()
}

/// Greedy atom order: prefer atoms whose variables are already bound (or
/// constant), then smaller relations. `exclude` removes one atom from the
/// ordering (the semi-naive driver places its delta atom first itself).
pub(crate) fn greedy_order(
    query: &Cnre,
    rels: &[&BinRel],
    mut bound: FxHashSet<Symbol>,
    exclude: Option<usize>,
) -> Vec<usize> {
    let n = query.atoms.len();
    let mut remaining: Vec<usize> = (0..n).filter(|&i| Some(i) != exclude).collect();
    let mut order: Vec<usize> = Vec::with_capacity(remaining.len());
    while let Some((pos, &best)) = remaining.iter().enumerate().max_by_key(|(_, &i)| {
        let a = &query.atoms[i];
        let shared = a.variables().filter(|v| bound.contains(v)).count();
        let fixed = [&a.left, &a.right].iter().filter(|t| !t.is_var()).count();
        (shared + fixed, usize::MAX - rels[i].len())
    }) {
        order.push(best);
        bound.extend(query.atoms[best].variables());
        remaining.swap_remove(pos);
    }
    order
}

#[derive(Clone, Copy)]
pub(crate) enum TermSlot {
    Var(Symbol),
    Fixed(NodeId),
}

/// One atom's backing during a join: a materialized relation, or a
/// memoizing demand evaluator probed from whichever endpoint is bound.
pub(crate) enum AtomAccess<'a> {
    Mat(&'a BinRel),
    Demand(&'a RefCell<DemandEvaluator>),
}

/// The mixed-access join. Returns `true` when `limit` rows were collected
/// (early exit for existence probes).
#[allow(clippy::too_many_arguments)]
pub(crate) fn join_access(
    graph: &Graph,
    access: &[AtomAccess],
    slots: &[(TermSlot, TermSlot)],
    order: &[usize],
    depth: usize,
    binding: &mut FxHashMap<Symbol, NodeId>,
    vars: &[Symbol],
    rows: &mut RowBuf,
    limit: Option<usize>,
) -> bool {
    if depth == order.len() {
        rows.push_from(vars, binding);
        return limit.is_some_and(|l| rows.len() >= l);
    }
    let ai = order[depth];
    let (l, r) = slots[ai];
    let lv = match l {
        TermSlot::Fixed(id) => Some(id),
        TermSlot::Var(v) => binding.get(&v).copied(),
    };
    let rv = match r {
        TermSlot::Fixed(id) => Some(id),
        TermSlot::Var(v) => binding.get(&v).copied(),
    };
    macro_rules! recurse {
        () => {
            join_access(
                graph,
                access,
                slots,
                order,
                depth + 1,
                binding,
                vars,
                rows,
                limit,
            )
        };
    }
    match (lv, rv) {
        (Some(u), Some(w)) => {
            let hit = match &access[ai] {
                AtomAccess::Mat(rel) => rel.contains(u, w),
                AtomAccess::Demand(ev) => ev.borrow_mut().contains(graph, u, w),
            };
            if hit {
                return recurse!();
            }
            false
        }
        (Some(u), None) => {
            let TermSlot::Var(rvar) = r else {
                unreachable!()
            };
            match &access[ai] {
                AtomAccess::Mat(rel) => {
                    for &w in rel.image(u) {
                        binding.insert(rvar, w);
                        if recurse!() {
                            binding.remove(&rvar);
                            return true;
                        }
                    }
                }
                AtomAccess::Demand(ev) => {
                    // Copy the memoized slice so the evaluator is free for
                    // re-borrowing inside the recursion.
                    let cand: Vec<NodeId> = ev.borrow_mut().image(graph, u).to_vec();
                    for w in cand {
                        binding.insert(rvar, w);
                        if recurse!() {
                            binding.remove(&rvar);
                            return true;
                        }
                    }
                }
            }
            binding.remove(&rvar);
            false
        }
        (None, Some(w)) => {
            let TermSlot::Var(lvar) = l else {
                unreachable!()
            };
            match &access[ai] {
                AtomAccess::Mat(rel) => {
                    for &u in rel.preimage(w) {
                        binding.insert(lvar, u);
                        if recurse!() {
                            binding.remove(&lvar);
                            return true;
                        }
                    }
                }
                AtomAccess::Demand(ev) => {
                    let cand: Vec<NodeId> = ev.borrow_mut().preimage(graph, w).to_vec();
                    for u in cand {
                        binding.insert(lvar, u);
                        if recurse!() {
                            binding.remove(&lvar);
                            return true;
                        }
                    }
                }
            }
            binding.remove(&lvar);
            false
        }
        (None, None) => {
            let TermSlot::Var(lvar) = l else {
                unreachable!()
            };
            let TermSlot::Var(rvar) = r else {
                unreachable!()
            };
            // The planner only assigns the demand path to atoms with a
            // bound endpoint, so a doubly-free atom is materialized; the
            // defensive arm below keeps the join total regardless.
            let pairs: Box<dyn Iterator<Item = (NodeId, NodeId)> + '_> = match &access[ai] {
                AtomAccess::Mat(rel) => Box::new(rel.iter()),
                AtomAccess::Demand(ev) => {
                    debug_assert!(false, "planner bound-endpoint invariant violated");
                    let mut all: Vec<(NodeId, NodeId)> = Vec::new();
                    for u in graph.node_ids() {
                        for &v in ev.borrow_mut().image(graph, u) {
                            all.push((u, v));
                        }
                    }
                    Box::new(all.into_iter())
                }
            };
            if lvar == rvar {
                // Self-join on one variable: diagonal pairs only.
                for (u, w) in pairs {
                    if u == w {
                        binding.insert(lvar, u);
                        let done = recurse!();
                        binding.remove(&lvar);
                        if done {
                            return true;
                        }
                    }
                }
            } else {
                for (u, w) in pairs {
                    binding.insert(lvar, u);
                    binding.insert(rvar, w);
                    let done = recurse!();
                    binding.remove(&rvar);
                    binding.remove(&lvar);
                    if done {
                        return true;
                    }
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    // These tests pin the behaviour of the deprecated one-shot wrappers
    // (downstream code still compiles against them); new code should go
    // through `PreparedQuery`, tested in `crate::prepared`.
    #![allow(deprecated)]

    use super::*;

    fn g1() -> Graph {
        // Figure 1(a).
        Graph::parse("(c1, f, _N); (c3, f, _N); (_N, f, c2); (_N, h, hx); (_N, h, hy);").unwrap()
    }

    #[test]
    fn single_atom_query() {
        let g = g1();
        let q = Cnre::parse("(x, h, y)").unwrap();
        let b = evaluate(&g, &q).unwrap();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn papers_query_certainlike_eval() {
        let g = g1();
        let q = Cnre::parse("(x1, f.f*.[h].f-.(f-)*, x2)").unwrap();
        let b = evaluate(&g, &q).unwrap();
        let consts = b.constant_rows(&g);
        // JQK_G1 = {(c1,c1),(c1,c3),(c3,c1),(c3,c3)} — all constants.
        assert_eq!(b.len(), 4);
        assert_eq!(consts.len(), 4);
    }

    #[test]
    fn conjunction_join() {
        let g = g1();
        // Cities x with a flight to y that has hotel hx.
        let q = Cnre::parse("(x, f, y), (y, h, \"hx\")").unwrap();
        let b = evaluate(&g, &q).unwrap();
        assert_eq!(b.len(), 2, "c1→N and c3→N");
        let rows = b.constant_rows(&g);
        assert!(rows.is_empty(), "y is the null N in every answer");
    }

    #[test]
    fn boolean_query_constants_only() {
        let g = g1();
        let yes = Cnre::parse("(\"c1\", f.f, \"c2\")").unwrap();
        assert!(!evaluate(&g, &yes).unwrap().is_empty());
        let no = Cnre::parse("(\"c2\", f, \"c1\")").unwrap();
        assert!(evaluate(&g, &no).unwrap().is_empty());
    }

    #[test]
    fn missing_constant_gives_empty() {
        let g = g1();
        let q = Cnre::parse("(\"nope\", f, x)").unwrap();
        assert!(evaluate(&g, &q).unwrap().is_empty());
    }

    #[test]
    fn repeated_variable_in_atom() {
        let g = Graph::parse("(a, f, a); (a, f, b);").unwrap();
        let q = Cnre::parse("(x, f, x)").unwrap();
        let b = evaluate(&g, &q).unwrap();
        assert_eq!(b.len(), 1, "only the self-loop");
    }

    #[test]
    fn shared_variable_across_atoms() {
        let g = Graph::parse("(a, f, b); (b, g, c); (b, g, d); (x, g, y);").unwrap();
        let q = Cnre::parse("(u, f, v), (v, g, w)").unwrap();
        let b = evaluate(&g, &q).unwrap();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn eval_with_shared_cache() {
        let g = g1();
        let mut cache = EvalCache::new();
        let q = Cnre::parse("(x, f.f*, y)").unwrap();
        let a1 = evaluate_with_cache(&g, &q, &mut cache).unwrap();
        let a2 = evaluate_with_cache(&g, &q, &mut cache).unwrap();
        assert_eq!(a1, a2);
    }

    #[test]
    fn seeded_evaluation_fixes_variables() {
        let g = g1();
        let q = Cnre::parse("(x, f, y), (y, h, z)").unwrap();
        let mut cache = EvalCache::new();
        let c1 = g.node_id(Node::cst("c1")).unwrap();
        let mut seed = FxHashMap::default();
        seed.insert(Symbol::new("x"), c1);
        let b = crate::eval::evaluate_seeded(&g, &q, &mut cache, &seed).unwrap();
        // x fixed to c1: y = N, z ∈ {hx, hy}.
        assert_eq!(b.len(), 2);
        for row in b.rows() {
            assert_eq!(row[0], c1);
        }
        // Seeding an unused variable is harmless.
        seed.insert(Symbol::new("unused"), c1);
        let b2 = crate::eval::evaluate_seeded(&g, &q, &mut cache, &seed).unwrap();
        assert_eq!(b2.len(), 2);
    }

    #[test]
    fn planner_modes_agree() {
        // Demand-eligible shapes (constants, seeds) and materialize-only
        // shapes (all-free) must produce identical answer sets.
        let g = g1();
        let row_set =
            |b: &NodeBindings| -> FxHashSet<Vec<NodeId>> { b.rows().map(|r| r.to_vec()).collect() };
        for (query, seed_var) in [
            ("(\"c1\", f.f, \"c2\")", None),
            ("(x, f, y), (y, h, z)", Some("x")),
            ("(x1, f.f*.[h].f-.(f-)*, x2)", None),
            ("(x1, f.f*.[h].f-.(f-)*, x2)", Some("x1")),
            ("(x, f, y), (y, h, \"hx\")", None),
        ] {
            let q = Cnre::parse(query).unwrap();
            let mut seed = FxHashMap::default();
            if let Some(v) = seed_var {
                seed.insert(Symbol::new(v), g.node_id(Node::cst("c1")).unwrap());
            }
            let mut c1 = EvalCache::new();
            let auto = evaluate_seeded_mode(&g, &q, &mut c1, &seed, PlannerMode::Auto).unwrap();
            let mut c2 = EvalCache::new();
            let mat =
                evaluate_seeded_mode(&g, &q, &mut c2, &seed, PlannerMode::Materialize).unwrap();
            assert_eq!(row_set(&auto), row_set(&mat), "{query} seed {seed_var:?}");
            let mut c3 = EvalCache::new();
            assert_eq!(
                evaluate_seeded_exists(&g, &q, &mut c3, &seed).unwrap(),
                !mat.is_empty(),
                "{query}"
            );
        }
    }

    #[test]
    fn evaluate_exists_probes_constants() {
        let g = g1();
        assert!(evaluate_exists(&g, &Cnre::parse("(\"c1\", f.f, \"c2\")").unwrap()).unwrap());
        assert!(!evaluate_exists(&g, &Cnre::parse("(\"c2\", f, \"c1\")").unwrap()).unwrap());
        assert!(!evaluate_exists(&g, &Cnre::parse("(\"nope\", f, x)").unwrap()).unwrap());
    }

    #[test]
    fn egd_body_from_example_2_2() {
        // (x1, h, x3), (x2, h, x3): pairs of cities sharing a hotel.
        let g = Graph::parse("(_N1, h, hy); (_N2, h, hx); (_N3, h, hx);").unwrap();
        let q = Cnre::parse("(x1, h, x3), (x2, h, x3)").unwrap();
        let b = evaluate(&g, &q).unwrap();
        // Pairs over hy: (N1,N1). Over hx: (N2,N2),(N2,N3),(N3,N2),(N3,N3).
        assert_eq!(b.len(), 5);
    }
}
