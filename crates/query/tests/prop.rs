//! Property-based tests for CNRE evaluation: the join engine is validated
//! against a naive all-assignments reference evaluator on random graphs
//! and queries.

use gdx_common::{FxHashMap, Symbol, Term};
use gdx_graph::{Graph, NodeId};
use gdx_nre::ast::Nre;
use gdx_nre::eval::eval;
use gdx_query::{Cnre, CnreAtom, PreparedQuery};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    proptest::collection::vec((0u32..5, 0u8..2, 0u32..5), 0..10).prop_map(|edges| {
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..5).map(|i| g.add_const(&format!("v{i}"))).collect();
        for (s, l, d) in edges {
            let label = ["f", "h"][l as usize];
            g.add_edge_labelled(nodes[s as usize], label, nodes[d as usize]);
        }
        g
    })
}

fn arb_nre() -> impl Strategy<Value = Nre> {
    let leaf = prop_oneof![
        prop_oneof![Just("f"), Just("h")].prop_map(Nre::label),
        prop_oneof![Just("f"), Just("h")].prop_map(Nre::inverse),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Nre::Union(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Nre::Concat(Box::new(x), Box::new(y))),
            inner.clone().prop_map(|x| Nre::Star(Box::new(x))),
            inner.prop_map(|x| Nre::Test(Box::new(x))),
        ]
    })
}

fn arb_query() -> impl Strategy<Value = Cnre> {
    let vars = ["x", "y", "z"];
    let atom = (0u8..3, arb_nre(), 0u8..3).prop_map(move |(a, r, b)| {
        CnreAtom::new(Term::var(vars[a as usize]), r, Term::var(vars[b as usize]))
    });
    proptest::collection::vec(atom, 1..3).prop_map(Cnre::new)
}

/// Naive reference: try every assignment of variables to nodes.
fn naive_eval(g: &Graph, q: &Cnre) -> Vec<Vec<NodeId>> {
    let vars = q.variables();
    let rels: Vec<_> = q.atoms.iter().map(|a| eval(g, &a.nre)).collect();
    let nodes: Vec<NodeId> = g.node_ids().collect();
    let mut out = Vec::new();
    let mut assign: FxHashMap<Symbol, NodeId> = FxHashMap::default();
    fn rec(
        q: &Cnre,
        rels: &[gdx_nre::BinRel],
        vars: &[Symbol],
        nodes: &[NodeId],
        depth: usize,
        assign: &mut FxHashMap<Symbol, NodeId>,
        out: &mut Vec<Vec<NodeId>>,
    ) {
        if depth == vars.len() {
            let ok = q.atoms.iter().zip(rels).all(|(atom, rel)| {
                let l = match atom.left {
                    Term::Var(v) => assign[&v],
                    Term::Const(_) => unreachable!("vars only"),
                };
                let r = match atom.right {
                    Term::Var(v) => assign[&v],
                    Term::Const(_) => unreachable!("vars only"),
                };
                rel.contains(l, r)
            });
            if ok {
                out.push(vars.iter().map(|v| assign[v]).collect());
            }
            return;
        }
        for &n in nodes {
            assign.insert(vars[depth], n);
            rec(q, rels, vars, nodes, depth + 1, assign, out);
        }
        assign.remove(&vars[depth]);
    }
    rec(q, &rels, &vars, &nodes, 0, &mut assign, &mut out);
    out.sort();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Join-based CNRE evaluation ≡ naive assignment enumeration.
    #[test]
    fn cnre_join_matches_naive(g in arb_graph(), q in arb_query()) {
        let fast = PreparedQuery::new(q.clone()).evaluate(&g).unwrap();
        let mut fast_rows: Vec<Vec<NodeId>> =
            fast.rows().map(|r| r.to_vec()).collect();
        fast_rows.sort();
        let slow = naive_eval(&g, &q);
        prop_assert_eq!(fast_rows, slow, "query {}", q);
    }

    /// CNRE answers are preserved under adding edges (positivity) —
    /// the property certain-answer counterexample search relies on.
    #[test]
    fn cnre_monotone(g in arb_graph(), q in arb_query()) {
        let pq = PreparedQuery::new(q.clone());
        let before = pq.evaluate(&g).unwrap();
        let mut bigger = g.clone();
        if bigger.node_count() >= 2 {
            bigger.add_edge_labelled(0, "f", 1);
            bigger.add_edge_labelled(1, "h", 0);
        }
        let after = pq.evaluate(&bigger).unwrap();
        for row in before.rows() {
            prop_assert!(after.contains_row(row));
        }
    }
}
