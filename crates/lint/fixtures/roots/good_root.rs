//! Fixture: a compliant library crate root.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]

pub fn noop() {}
