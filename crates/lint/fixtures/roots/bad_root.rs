//! Fixture: a library crate root missing both contract attributes —
//! `#![forbid(unsafe_code)]` and the clippy unwrap/expect deny
//! preamble. Both findings anchor to line 1 (checked by a dedicated
//! test, not expect markers).

pub fn noop() {}
