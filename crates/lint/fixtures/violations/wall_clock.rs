//! Fixture: wall-clock reads in library code.

use std::time::{Instant, SystemTime};

fn stamp_instant() -> Instant {
    Instant::now() // gdx-lint: expect(wall-clock)
}

fn stamp_system() -> u64 {
    let t = SystemTime::now(); // gdx-lint: expect(wall-clock)
    t.duration_since(SystemTime::UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}
