//! Fixture: raw thread creation outside the runtime crate.

fn fan_out() -> u32 {
    let h = std::thread::spawn(|| 1 + 1); // gdx-lint: expect(thread-spawn)
    h.join().unwrap_or(0)
}

fn scoped() {
    std::thread::scope(|_s| {}); // gdx-lint: expect(thread-spawn)
}
