//! Fixture: hash-ordered iteration positives. Every line carrying an
//! expect marker must produce exactly that diagnostic; the allowed
//! site at the bottom must produce none.

use std::collections::{HashMap, HashSet};

fn keys_leak_order(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect() // gdx-lint: expect(hash-iter)
}

fn for_in_leaks_order(s: HashSet<u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for v in s { // gdx-lint: expect(hash-iter)
        out.push(v);
    }
    out
}

struct State {
    index: HashMap<u32, u32>,
}

impl State {
    fn ordered(&self) -> Vec<u32> {
        self.index.values().copied().collect() // gdx-lint: expect(hash-iter)
    }
}

fn allowed_iteration(m: &HashMap<u32, u32>) -> u64 {
    let mut acc = 0u64;
    // gdx-lint: allow(hash-iter) — fixture: xor-accumulation is commutative, order cannot escape
    for (&k, &v) in m {
        acc ^= u64::from(k ^ v);
    }
    acc
}
