//! Fixture: unsafe blocks. Both sites enter the inventory; only the
//! un-annotated one (no `SAFETY:` comment within the three preceding
//! comment lines) is a diagnostic.

fn unannotated(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() } // gdx-lint: expect(unsafe-code)
}

fn annotated(v: &[u8]) -> u8 {
    // SAFETY: the caller guarantees `v` is non-empty, so index 0 is
    // in-bounds and the pointer read is valid.
    unsafe { *v.as_ptr() }
}
