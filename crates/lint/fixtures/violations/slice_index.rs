//! Fixture: warn-tier slice indexing with a computed subscript. Not an
//! error — indexing after a length check is idiomatic — but each site
//! is a latent panic, so the linter keeps an inventory.

fn pick(xs: &[u32], i: usize) -> u32 {
    xs[i] // gdx-lint: expect(slice-index)
}

fn window(xs: &[u32], from: usize) -> &[u32] {
    &xs[from..] // gdx-lint: expect(slice-index)
}

fn chained(grid: &[Vec<u32>], r: usize, c: usize) -> u32 {
    grid[r][c] // gdx-lint: expect(slice-index) — two subscripts, one line: single finding per line
}
