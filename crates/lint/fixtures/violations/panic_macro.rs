//! Fixture: panic-family macros in non-test library code. The
//! `#[cfg(test)]` module at the bottom must NOT fire — tests may
//! assert by panicking.

fn must_have(v: Option<u32>) -> u32 {
    match v {
        Some(x) => x,
        None => panic!("missing value"), // gdx-lint: expect(panic-macro)
    }
}

fn unfinished() {
    todo!() // gdx-lint: expect(panic-macro)
}

fn reserved() {
    unimplemented!() // gdx-lint: expect(panic-macro)
}

fn leftover_probe(x: u32) -> u32 {
    dbg!(x) // gdx-lint: expect(panic-macro)
}

#[cfg(test)]
mod tests {
    #[test]
    fn panicking_assertions_are_fine_here() {
        if 1 + 1 != 2 {
            panic!("arithmetic is broken");
        }
    }
}
