//! Fixture: a library crate constructing its own monotonic clock
//! instead of taking the injected `gdx_obs::Clock`.

use gdx_obs::{Clock, MonotonicClock, Obs};

fn observed() -> Obs {
    Obs::with_clock(std::sync::Arc::new(MonotonicClock::new())) // gdx-lint: expect(clock-inject)
}

fn stamp() -> u64 {
    let clock = MonotonicClock::default(); // gdx-lint: expect(clock-inject)
    clock.now_micros()
}
