//! Fixture: `.lock().unwrap()`-family poisoning bombs. One poisoned
//! panic would condemn every later caller; locks must recover with
//! `PoisonError::into_inner`.

use std::sync::{Mutex, RwLock};

fn counter(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap() // gdx-lint: expect(lock-unwrap)
}

fn peek(l: &RwLock<u64>) -> u64 {
    *l.read().expect("poisoned") // gdx-lint: expect(lock-unwrap)
}

fn bump(l: &RwLock<u64>) {
    *l.write().unwrap() += 1; // gdx-lint: expect(lock-unwrap)
}
