//! Fixture: suppression policing. A stale allow (matching no
//! diagnostic) and a reason-less allow are themselves diagnostics —
//! suppressions must stay attached to live findings.

fn nothing_to_suppress() -> u32 {
    // gdx-lint: expect(unused-allow)
    // gdx-lint: allow(hash-iter) — fixture: there is no hash iteration on the next line
    41 + 1
}

fn reason_is_mandatory() -> u32 {
    // gdx-lint: expect(bad-allow)
    // gdx-lint: allow(panic-macro)
    2 + 2
}
