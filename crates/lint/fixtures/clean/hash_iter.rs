//! Clean twin of `violations/hash_iter.rs`: every iteration is
//! sanctioned — sorted, re-aggregated into an order-free container, or
//! consumed by an order-free sink.

use std::collections::{BTreeMap, HashMap, HashSet};

fn sorted_keys(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut ks: Vec<u32> = m.keys().copied().collect();
    ks.sort_unstable();
    ks
}

fn reaggregated(s: &HashSet<u32>) -> BTreeMap<u32, u32> {
    s.iter().map(|&v| (v, v)).collect::<BTreeMap<_, _>>()
}

fn order_free_sink(m: &HashMap<u32, u32>) -> usize {
    m.values().filter(|&&v| v > 0).count()
}

fn hash_to_hash(dst: &mut HashSet<u32>, src: HashSet<u32>) {
    dst.extend(src.into_iter());
}
