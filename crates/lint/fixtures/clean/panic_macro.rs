//! Clean twin of `violations/panic_macro.rs`: fallible paths return
//! errors instead of panicking.

fn must_have(v: Option<u32>) -> Result<u32, String> {
    v.ok_or_else(|| "missing value".to_owned())
}

fn finished(x: u32) -> u32 {
    x.wrapping_add(1)
}
