//! Clean twin of `violations/thread_spawn.rs`: parallelism decisions
//! are expressed as data (a worker count) and handed to the runtime.

fn worker_count(hint: usize) -> usize {
    hint.clamp(1, 64)
}

fn chunk(len: usize, workers: usize) -> usize {
    len.div_ceil(workers.max(1))
}
