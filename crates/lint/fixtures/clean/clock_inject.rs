//! Clean twin of `violations/clock_inject.rs`: the clock is injected
//! by the caller; the library only consumes the trait.

use gdx_obs::{Clock, Obs};
use std::sync::Arc;

fn observed(clock: Arc<dyn Clock>) -> Obs {
    Obs::with_clock(clock)
}

fn stamp(clock: &dyn Clock) -> u64 {
    clock.now_micros()
}

fn phase_micros(obs: &Obs) -> u64 {
    obs.now_micros()
}
