//! Clean twin of `violations/wall_clock.rs`: time values flow in from
//! the caller; the library never reads the clock itself.

use std::time::Duration;

fn within_budget(elapsed: Duration, budget: Duration) -> bool {
    elapsed <= budget
}

fn double(budget: Duration) -> Duration {
    budget.saturating_mul(2)
}
