//! Clean twin of `violations/lock_unwrap.rs`: poisoning is recovered
//! with `PoisonError::into_inner` — the data is still consistent, the
//! panic that poisoned the lock already reported the real failure.

use std::sync::{Mutex, PoisonError, RwLock};

fn counter(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn peek(l: &RwLock<u64>) -> u64 {
    *l.read().unwrap_or_else(PoisonError::into_inner)
}

fn bump(l: &RwLock<u64>) {
    *l.write().unwrap_or_else(PoisonError::into_inner) += 1;
}
