//! Clean twin of `violations/slice_index.rs`: checked accessors,
//! literal subscripts and full-range reborrows are all exempt.

fn first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

fn fixed_probe(xs: &[u32; 4]) -> u32 {
    xs[0]
}

fn whole(xs: &[u32]) -> &[u32] {
    &xs[..]
}

fn checked(xs: &[u32], i: usize) -> u32 {
    xs.get(i).copied().unwrap_or(0)
}
