//! Report rendering: human text and machine-readable JSON. The JSON
//! writer is minimal by design (offline workspace, no serde) and emits
//! a stable, sorted document suitable for CI artifact diffing.

use crate::{Report, Severity};
use std::fmt::Write as _;

/// Human-readable report. Warn-tier findings are summarized unless
/// `show_warnings`; errors and unused allows are always listed.
pub fn render_text(report: &Report, show_warnings: bool) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "gdx-lint: checked {} files across {} crates",
        report.files_checked, report.crates_checked
    );
    let mut hidden_warns = 0usize;
    for d in &report.diagnostics {
        if d.severity == Severity::Warn && !show_warnings {
            hidden_warns += 1;
            continue;
        }
        let _ = writeln!(
            s,
            "{}[{}] {}:{}: {}",
            d.severity.label(),
            d.rule.id(),
            d.file,
            d.line,
            d.message
        );
    }
    if hidden_warns > 0 {
        let _ = writeln!(
            s,
            "note: {hidden_warns} warn-tier finding(s) hidden (pass --warnings to list)"
        );
    }
    let unused = report.allows.iter().filter(|a| !a.used).count();
    let annotated = report
        .unsafe_inventory
        .iter()
        .filter(|u| u.annotated)
        .count();
    let _ = writeln!(
        s,
        "summary: {} error(s), {} warning(s), {} allow(s) ({} unused), \
         {} unsafe site(s) ({} annotated)",
        report.errors(),
        report.warnings(),
        report.allows.len(),
        unused,
        report.unsafe_inventory.len(),
        annotated,
    );
    let _ = writeln!(
        s,
        "gdx-lint: {}",
        if report.is_clean() { "clean" } else { "FAILED" }
    );
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable report (stable field order, sorted rows).
pub fn render_json(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"version\": 1,");
    let _ = writeln!(s, "  \"files_checked\": {},", report.files_checked);
    let _ = writeln!(s, "  \"crates_checked\": {},", report.crates_checked);
    let _ = writeln!(s, "  \"errors\": {},", report.errors());
    let _ = writeln!(s, "  \"warnings\": {},", report.warnings());
    let _ = writeln!(s, "  \"clean\": {},", report.is_clean());
    s.push_str("  \"diagnostics\": [\n");
    for (i, d) in report.diagnostics.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
             \"line\": {}, \"message\": \"{}\"}}",
            d.rule.id(),
            d.severity.label(),
            json_escape(&d.file),
            d.line,
            json_escape(&d.message)
        );
        s.push_str(if i + 1 < report.diagnostics.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ],\n  \"unsafe_inventory\": [\n");
    for (i, u) in report.unsafe_inventory.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"file\": \"{}\", \"line\": {}, \"annotated\": {}}}",
            json_escape(&u.file),
            u.line,
            u.annotated
        );
        s.push_str(if i + 1 < report.unsafe_inventory.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ],\n  \"allows\": [\n");
    for (i, a) in report.allows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"used\": {}, \"reason\": \"{}\"}}",
            a.rule.id(),
            json_escape(&a.file),
            a.line,
            a.used,
            json_escape(&a.reason)
        );
        s.push_str(if i + 1 < report.allows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AllowRecord, Diagnostic, Rule, UnsafeSite};

    fn sample() -> Report {
        let mut r = Report {
            diagnostics: vec![Diagnostic {
                rule: Rule::HashIter,
                severity: Severity::Error,
                file: "crates/x/src/lib.rs".into(),
                line: 10,
                message: "iteration with \"quotes\"".into(),
            }],
            unsafe_inventory: vec![UnsafeSite {
                file: "crates/y/src/lib.rs".into(),
                line: 3,
                annotated: true,
            }],
            allows: vec![AllowRecord {
                file: "crates/x/src/lib.rs".into(),
                line: 9,
                rule: Rule::SliceIndex,
                reason: "bounds proven by len check".into(),
                used: true,
            }],
            files_checked: 2,
            crates_checked: 2,
        };
        r.sort();
        r
    }

    #[test]
    fn text_report_lists_errors_and_summary() {
        let t = render_text(&sample(), false);
        assert!(t.contains("error[hash-iter]"));
        assert!(t.contains("crates/x/src/lib.rs:10"));
        assert!(t.contains("1 error(s)"));
        assert!(t.contains("FAILED"));
    }

    #[test]
    fn json_is_parseable_by_the_naive_reader() {
        // Round-trip through a minimal structural check: balanced
        // braces/brackets and escaped quotes.
        let j = render_json(&sample());
        assert!(j.contains("\"rule\": \"hash-iter\""));
        assert!(j.contains("\\\"quotes\\\""));
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced braces:\n{j}"
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn clean_report_says_clean() {
        let r = Report {
            files_checked: 1,
            ..Report::default()
        };
        let t = render_text(&r, false);
        assert!(t.contains("gdx-lint: clean"));
        assert!(render_json(&r).contains("\"clean\": true"));
    }
}
