//! `gdx-lint` — the workspace invariant checker.
//!
//! The engine's correctness contracts (byte-identical outputs across
//! worker counts, insertion-order-carrying data structures, poison-
//! recovering mutexes, unwrap-free library crates) live in
//! ARCHITECTURE.md prose and are guarded after the fact by the sim
//! oracles. This crate turns them into mechanical lints that fail CI
//! the moment a contract is broken, instead of costing a sim-campaign
//! debugging session later.
//!
//! # Rule catalog
//!
//! Determinism:
//! * `hash-iter` — iteration over a hash-ordered collection
//!   (`HashMap`/`HashSet`/`FxHashMap`/`FxHashSet`) in a library crate,
//!   unless the statement provably re-aggregates order-free (collects
//!   into another hash/BTree container, feeds an order-insensitive sink
//!   like `count`/`sum`/`min`/`max`/`any`/`all`, or the collected Vec is
//!   sorted within the next few lines). Hash order must never leak into
//!   outputs.
//! * `wall-clock` — `Instant::now`/`SystemTime::now` outside
//!   `cli`/`bench`/`sim` and gdx-obs's clock module (the one sanctioned
//!   wall-clock wrapper): library results must be functions of their
//!   inputs.
//! * `clock-inject` — constructing `MonotonicClock` in a library crate:
//!   time flows in through an injected `gdx_obs::Clock` (`&dyn Clock` /
//!   `Arc<dyn Clock>`); only entry points (cli/bench/sim) decide which
//!   clock runs, so library behaviour stays replayable.
//! * `thread-spawn` — `thread::spawn`/`thread::scope` outside
//!   `gdx-runtime`: all parallelism goes through the deterministic pool.
//!
//! Panic hygiene:
//! * `panic-macro` — `panic!`/`todo!`/`unimplemented!`/`dbg!` in
//!   non-test library code.
//! * `lock-unwrap` — `.lock().unwrap()` (and `read`/`write`/`try_*`
//!   variants): shared mutexes must recover from poisoning via
//!   `PoisonError::into_inner`, so one caught panic cannot condemn
//!   every later operation.
//! * `slice-index` — direct indexing `x[i]` in library code
//!   (warn-tier): prefer `get()` or a justified allow.
//!
//! Hygiene:
//! * `unsafe-code` — every `unsafe` token must carry a `// SAFETY:`
//!   comment just above it; all sites are inventoried in the report.
//! * `forbid-unsafe` — every crate root carries
//!   `#![forbid(unsafe_code)]`.
//! * `deny-preamble` — every library crate root carries
//!   `#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]`.
//! * `dep-shim` — no non-workspace dependency in any `Cargo.toml`
//!   without a vendored `shims/` entry (the build environment is
//!   offline).
//!
//! # Suppression
//!
//! Explicit and auditable only:
//!
//! ```text
//! // gdx-lint: allow(<rule>) — <reason>
//! ```
//!
//! trailing on the offending line or alone on the line above. The
//! reason is mandatory (`bad-allow` otherwise) and stale suppressions
//! fail the run (`unused-allow`), so the allow inventory can never
//! drift from the code.
//!
//! Test code — `tests/`, `benches/`, `examples/` trees and
//! `#[cfg(test)]`/`#[test]` items — is exempt from the source rules;
//! the `deny(clippy::unwrap_used)` preamble is deliberately
//! `not(test)`-gated for the same reason.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]

pub mod lexer;
pub mod manifest;
pub mod report;
pub mod source;
pub mod workspace;

pub use report::{render_json, render_text};
pub use workspace::{check_workspace, find_workspace_root};

/// Severity tier of a diagnostic. Only `Error` affects the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Error,
    Warn,
}

impl Severity {
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
        }
    }
}

/// The rule catalog. `UnusedAllow`/`BadAllow` police the suppression
/// mechanism itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    HashIter,
    WallClock,
    ClockInject,
    ThreadSpawn,
    PanicMacro,
    LockUnwrap,
    SliceIndex,
    UnsafeCode,
    ForbidUnsafe,
    DenyPreamble,
    DepShim,
    UnusedAllow,
    BadAllow,
}

/// Every rule, for catalog listings and sharpness coverage checks.
pub const ALL_RULES: &[Rule] = &[
    Rule::HashIter,
    Rule::WallClock,
    Rule::ClockInject,
    Rule::ThreadSpawn,
    Rule::PanicMacro,
    Rule::LockUnwrap,
    Rule::SliceIndex,
    Rule::UnsafeCode,
    Rule::ForbidUnsafe,
    Rule::DenyPreamble,
    Rule::DepShim,
    Rule::UnusedAllow,
    Rule::BadAllow,
];

impl Rule {
    /// Stable kebab-case id used in output and allow comments.
    pub fn id(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::WallClock => "wall-clock",
            Rule::ClockInject => "clock-inject",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::PanicMacro => "panic-macro",
            Rule::LockUnwrap => "lock-unwrap",
            Rule::SliceIndex => "slice-index",
            Rule::UnsafeCode => "unsafe-code",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::DenyPreamble => "deny-preamble",
            Rule::DepShim => "dep-shim",
            Rule::UnusedAllow => "unused-allow",
            Rule::BadAllow => "bad-allow",
        }
    }

    /// Inverse of [`Rule::id`]; `None` for unknown ids.
    pub fn from_id(id: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.id() == id)
    }

    /// `slice-index` is advisory; everything else fails the run.
    pub fn severity(self) -> Severity {
        match self {
            Rule::SliceIndex => Severity::Warn,
            _ => Severity::Error,
        }
    }
}

/// One finding: rule, tier, location, human message.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: Rule,
    pub severity: Severity,
    pub file: String,
    pub line: u32,
    pub message: String,
}

/// One `unsafe` occurrence (annotated or not) for the inventory.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub file: String,
    pub line: u32,
    /// Whether a `// SAFETY:` comment annotates the site.
    pub annotated: bool,
}

/// One parsed allow comment, with whether it suppressed anything.
#[derive(Debug, Clone)]
pub struct AllowRecord {
    pub file: String,
    pub line: u32,
    pub rule: Rule,
    pub reason: String,
    pub used: bool,
}

/// Aggregated result of a workspace (or single-file) run.
#[derive(Debug, Default)]
pub struct Report {
    /// Sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    pub unsafe_inventory: Vec<UnsafeSite>,
    pub allows: Vec<AllowRecord>,
    pub files_checked: usize,
    pub crates_checked: usize,
}

impl Report {
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// Clean = no errors. Warn-tier findings never fail the run.
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// Canonical ordering for stable output.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.unsafe_inventory
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        self.allows
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    }
}

/// How a crate is classified for rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateKind {
    /// Library contract applies in full (determinism + panic hygiene).
    Library,
    /// Front-end / harness crates (`gdx-cli`, `gdx-bench`, `gdx-lint`):
    /// may panic, print and take wall-clock time.
    Tool,
}

/// Requirements checked only on a crate's root file (`lib.rs` /
/// `main.rs`): `#![forbid(unsafe_code)]` always, the clippy deny
/// preamble when `require_preamble` (library crates).
#[derive(Debug, Clone, Copy)]
pub struct RootPolicy {
    pub require_preamble: bool,
}

/// Per-file lint context: which crate the file belongs to, and whether
/// this file is the crate root (attribute requirements apply there).
#[derive(Debug, Clone)]
pub struct FileCtx {
    pub crate_name: String,
    pub kind: CrateKind,
    pub root: Option<RootPolicy>,
    /// True only for gdx-obs's clock module — the one library file
    /// allowed to read the wall clock (it *is* the injected clock).
    pub clock_module: bool,
    /// True only for gdx-server's network module (`net.rs`) — the
    /// process edge that owns sockets, the accept/worker threads and
    /// the real clock it injects into everything behind it. The same
    /// shape of carve-out as `clock_module`: one named file, not a
    /// whole crate.
    pub net_module: bool,
}

impl FileCtx {
    pub fn library(name: &str) -> FileCtx {
        FileCtx {
            crate_name: name.to_owned(),
            kind: CrateKind::Library,
            root: None,
            clock_module: false,
            net_module: false,
        }
    }

    pub fn tool(name: &str) -> FileCtx {
        FileCtx {
            crate_name: name.to_owned(),
            kind: CrateKind::Tool,
            root: None,
            clock_module: false,
            net_module: false,
        }
    }

    /// Whether `rule` is checked for this crate. The exemption table is
    /// the contract: tools may use the clock and panic; only the
    /// runtime crate touches raw threads; the deterministic-sim crate
    /// is library-class except for the clock (campaign timing); the
    /// observability crate's clock module wraps the wall clock for
    /// everyone else and constructs what others must inject; the
    /// server crate's net module is the process edge that spawns the
    /// accept/worker threads and constructs the deadline clock it
    /// injects — every other server file stays under the full library
    /// contract.
    pub fn applies(&self, rule: Rule) -> bool {
        let lib = self.kind == CrateKind::Library;
        match rule {
            Rule::HashIter | Rule::PanicMacro | Rule::SliceIndex => lib,
            Rule::WallClock => {
                lib && self.crate_name != "gdx-sim" && !self.clock_module && !self.net_module
            }
            Rule::ClockInject => {
                lib && self.crate_name != "gdx-obs"
                    && self.crate_name != "gdx-sim"
                    && !self.net_module
            }
            Rule::ThreadSpawn => self.crate_name != "gdx-runtime" && !self.net_module,
            Rule::LockUnwrap | Rule::UnsafeCode => true,
            // Crate-root / manifest rules are not per-file.
            Rule::ForbidUnsafe | Rule::DenyPreamble | Rule::DepShim => false,
            Rule::UnusedAllow | Rule::BadAllow => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for &r in ALL_RULES {
            assert_eq!(Rule::from_id(r.id()), Some(r), "{r:?}");
        }
        assert_eq!(Rule::from_id("no-such-rule"), None);
    }

    #[test]
    fn applicability_table() {
        let lib = FileCtx::library("gdx-graph");
        let sim = FileCtx::library("gdx-sim");
        let runtime = FileCtx::library("gdx-runtime");
        let cli = FileCtx::tool("gdx-cli");
        let obs = FileCtx::library("gdx-obs");
        let mut clock = FileCtx::library("gdx-obs");
        clock.clock_module = true;
        let server = FileCtx::library("gdx-server");
        let mut net = FileCtx::library("gdx-server");
        net.net_module = true;
        assert!(lib.applies(Rule::HashIter));
        assert!(!cli.applies(Rule::HashIter));
        assert!(lib.applies(Rule::WallClock));
        assert!(!sim.applies(Rule::WallClock));
        assert!(obs.applies(Rule::WallClock), "obs outside clock.rs");
        assert!(!clock.applies(Rule::WallClock), "the clock module itself");
        assert!(lib.applies(Rule::ClockInject));
        assert!(!obs.applies(Rule::ClockInject));
        assert!(!sim.applies(Rule::ClockInject));
        assert!(!cli.applies(Rule::ClockInject));
        assert!(sim.applies(Rule::PanicMacro));
        assert!(lib.applies(Rule::ThreadSpawn));
        assert!(!runtime.applies(Rule::ThreadSpawn));
        assert!(cli.applies(Rule::ThreadSpawn));
        assert!(cli.applies(Rule::LockUnwrap));
        // gdx-server is an ordinary library crate except for net.rs,
        // which owns threads and the real clock (the process edge).
        assert!(server.applies(Rule::ThreadSpawn));
        assert!(server.applies(Rule::ClockInject));
        assert!(server.applies(Rule::WallClock));
        assert!(!net.applies(Rule::ThreadSpawn), "net.rs spawns the pool");
        assert!(!net.applies(Rule::ClockInject), "net.rs builds the clock");
        assert!(!net.applies(Rule::WallClock), "net.rs owns socket timeouts");
        assert!(net.applies(Rule::PanicMacro), "panic hygiene still applies");
        assert!(net.applies(Rule::LockUnwrap));
    }

    #[test]
    fn only_slice_index_is_warn_tier() {
        for &r in ALL_RULES {
            let expect = if r == Rule::SliceIndex {
                Severity::Warn
            } else {
                Severity::Error
            };
            assert_eq!(r.severity(), expect, "{r:?}");
        }
    }
}
