//! A lightweight Rust token scanner.
//!
//! The build environment is offline, so the linter cannot lean on syn or
//! rustc internals; instead it hand-rolls just enough lexing to be
//! line-, comment- and string-aware (the same idiom as `bench_gate`'s
//! recursive-descent JSON reader). The scanner produces a flat token
//! stream — identifiers, single-char punctuation, literals — plus the
//! list of `//` line comments, which is where the allow/expect/SAFETY
//! annotations live. Block comments (nested, per Rust), string literals
//! (plain, raw, byte), char literals and lifetimes are recognized so
//! that their *contents* never leak into the token stream: a `panic!`
//! inside a doc comment or a format string must not fire a rule.

/// Token kind. Punctuation is emitted one char at a time (`::` arrives
/// as two `:` tokens); rule matchers work on short token sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// String / char / numeric literal (contents opaque).
    Lit,
}

/// One token: kind, 1-based source line, and the source slice.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    pub kind: TokKind,
    pub line: u32,
    pub text: &'a str,
}

impl<'a> Tok<'a> {
    /// True when this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// A `//` line comment: 1-based line and the text after the `//`.
#[derive(Debug, Clone)]
pub struct CommentLine {
    pub line: u32,
    pub text: String,
}

/// Lexer output: the token stream and every line comment.
#[derive(Debug)]
pub struct Lexed<'a> {
    pub tokens: Vec<Tok<'a>>,
    pub comments: Vec<CommentLine>,
}

/// True for characters that may continue an identifier.
fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// True for characters that may start an identifier.
fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

/// Scans `src` into tokens + comments. Never fails: malformed input
/// (unterminated string, stray byte) degrades to best-effort tokens —
/// the linter must keep walking a tree that rustc will reject anyway.
pub fn lex(src: &str) -> Lexed<'_> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advances `i` past a (possibly `#`-fenced) string body that starts
    // at the opening quote, counting newlines. `hashes` is the number of
    // `#` in the raw-string fence; 0 with `escapes` handles plain
    // strings.
    let scan_string = |i: &mut usize, line: &mut u32, hashes: usize, escapes: bool| {
        *i += 1; // opening quote
        while *i < bytes.len() {
            match bytes[*i] {
                b'\\' if escapes => *i += 2,
                b'\n' => {
                    *line += 1;
                    *i += 1;
                }
                b'"' => {
                    let mut k = 0;
                    while k < hashes && bytes.get(*i + 1 + k) == Some(&b'#') {
                        k += 1;
                    }
                    if k == hashes {
                        *i += 1 + hashes;
                        return;
                    }
                    *i += 1;
                }
                _ => *i += 1,
            }
        }
    };

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\n' {
                    j += 1;
                }
                comments.push(CommentLine {
                    line,
                    text: src[start..j].to_owned(),
                });
                i = j;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let start = i;
                let start_line = line;
                scan_string(&mut i, &mut line, 0, true);
                tokens.push(Tok {
                    kind: TokKind::Lit,
                    line: start_line,
                    text: &src[start..i.min(src.len())],
                });
            }
            b'\'' => {
                // Char literal vs lifetime. `'\...'` and `'X'` are
                // chars; `'ident` (no closing quote right after) is a
                // lifetime and produces no token.
                if bytes.get(i + 1) == Some(&b'\\') {
                    let mut j = i + 2;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    tokens.push(Tok {
                        kind: TokKind::Lit,
                        line,
                        text: &src[i..(j + 1).min(src.len())],
                    });
                    i = j + 1;
                } else if bytes.get(i + 2) == Some(&b'\'')
                    && bytes.get(i + 1).is_some_and(|&c| c != b'\'')
                {
                    tokens.push(Tok {
                        kind: TokKind::Lit,
                        line,
                        text: &src[i..i + 3],
                    });
                    i += 3;
                } else {
                    // Lifetime: skip the quote and the identifier.
                    i += 1;
                    while i < bytes.len() && is_ident_continue(bytes[i]) {
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_or_byte_string(bytes, i) => {
                let start = i;
                let start_line = line;
                // Skip the prefix letters (`r`, `b`, `br`, `rb`).
                while i < bytes.len() && (bytes[i] == b'r' || bytes[i] == b'b') {
                    i += 1;
                }
                let mut hashes = 0usize;
                while bytes.get(i) == Some(&b'#') {
                    hashes += 1;
                    i += 1;
                }
                let escapes = hashes == 0 && !src[start..i].contains('r');
                scan_string(&mut i, &mut line, hashes, escapes);
                tokens.push(Tok {
                    kind: TokKind::Lit,
                    line: start_line,
                    text: &src[start..i.min(src.len())],
                });
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                tokens.push(Tok {
                    kind: TokKind::Ident,
                    line,
                    text: &src[start..i],
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (is_ident_continue(bytes[i]) || bytes[i] == b'.')
                    // `0..n` range: stop the number before `..`.
                    && !(bytes[i] == b'.' && bytes.get(i + 1) == Some(&b'.'))
                {
                    i += 1;
                }
                tokens.push(Tok {
                    kind: TokKind::Lit,
                    line,
                    text: &src[start..i],
                });
            }
            _ => {
                let len = src[i..].chars().next().map_or(1, char::len_utf8);
                tokens.push(Tok {
                    kind: TokKind::Punct,
                    line,
                    text: &src[i..i + len],
                });
                i += len;
            }
        }
    }
    Lexed { tokens, comments }
}

/// True when position `i` starts a raw/byte string prefix (`r"`, `r#`,
/// `b"`, `br"`, `br#`, ...), as opposed to a plain identifier.
fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') && j - i < 2 {
        j += 1;
    }
    // Must not be the start of a longer identifier (`raw_value`).
    if j < bytes.len() && is_ident_continue(bytes[j]) && bytes[j] != b'r' && bytes[j] != b'b' {
        return false;
    }
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let src = r##"
// panic! in a comment
/* panic! in /* a nested */ block */
let s = "panic!(\"x\")";
let r = r#"panic!"#;
let b = b"panic!";
"##;
        assert!(!idents(src).contains(&"panic"));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let s = \"a\nb\nc\";\nfoo();";
        let l = lex(src);
        let foo = l.tokens.iter().find(|t| t.is_ident("foo")).unwrap();
        assert_eq!(foo.line, 4);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let l = lex(src);
        let lits: Vec<_> = l.tokens.iter().filter(|t| t.kind == TokKind::Lit).collect();
        assert_eq!(lits.len(), 1);
        assert_eq!(lits[0].text, "'x'");
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let src = "let x = 1; // gdx-lint: allow(slice-index) — reason\n// plain\n";
        let l = lex(src);
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("gdx-lint"));
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn numbers_and_ranges() {
        let src = "for i in 0..10 { a[i]; }";
        let l = lex(src);
        let texts: Vec<&str> = l.tokens.iter().map(|t| t.text).collect();
        assert!(texts.contains(&"0"));
        assert!(texts.contains(&"10"));
        // Two separate `.` puncts for the range.
        assert_eq!(texts.iter().filter(|t| **t == ".").count(), 2);
    }

    #[test]
    fn raw_identifier_prefix_is_not_a_string() {
        let src = "let raw_value = br(bytes);";
        assert!(idents(src).contains(&"raw_value"));
        assert!(idents(src).contains(&"br"));
    }
}
