//! `gdx-lint` — standalone entry point for the workspace invariant
//! checker. The same engine is reachable as `gdx lint` through the CLI.
//!
//! ```text
//! cargo run -p gdx-lint -- check [--format json] [--warnings] [--root DIR]
//! ```
//!
//! Exit codes: 0 clean, 1 contract violations (or stale allows), 2
//! usage/environment errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
gdx-lint — workspace invariant checker (determinism, panic hygiene, locking)

USAGE:
  gdx-lint check [--format text|json] [--warnings] [--root DIR]

  --format json   machine-readable report (stable, sorted)
  --warnings      list warn-tier findings (slice-index) individually
  --root DIR      workspace root (default: walk up from the current dir)

Rules and the allow-comment policy are documented in ARCHITECTURE.md
(\"Static analysis\"). Suppress a finding with:
  // gdx-lint: allow(<rule>) — <reason>
Stale suppressions fail the run.
";

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format_json = false;
    let mut show_warnings = false;
    let mut root: Option<PathBuf> = None;
    let mut saw_check = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "check" => saw_check = true,
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("json") => format_json = true,
                    Some("text") => format_json = false,
                    other => {
                        return Err(format!("--format expects `text` or `json`, got {other:?}"))
                    }
                }
            }
            "--warnings" => show_warnings = true,
            "--root" => {
                i += 1;
                let dir = args
                    .get(i)
                    .ok_or_else(|| "--root needs a directory".to_owned())?;
                root = Some(PathBuf::from(dir));
            }
            "help" | "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
        i += 1;
    }
    if !saw_check {
        println!("{USAGE}");
        return Err("missing subcommand `check`".to_owned());
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            gdx_lint::find_workspace_root(&cwd)
                .ok_or_else(|| "no [workspace] Cargo.toml above the current dir".to_owned())?
        }
    };
    let report =
        gdx_lint::check_workspace(&root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    if format_json {
        print!("{}", gdx_lint::render_json(&report));
    } else {
        print!("{}", gdx_lint::render_text(&report, show_warnings));
    }
    Ok(report.is_clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("gdx-lint: {e}");
            ExitCode::from(2)
        }
    }
}
