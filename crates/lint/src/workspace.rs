//! Workspace walker: enumerates member crates from the root manifest,
//! classifies them, and runs the source and manifest rules over every
//! file, producing one aggregated [`Report`].

use crate::manifest::lint_manifest;
use crate::source::lint_source;
use crate::{CrateKind, FileCtx, Report, RootPolicy};
use std::io;
use std::path::{Path, PathBuf};

/// Crates allowed to panic, print and read the clock: user-facing
/// front ends and measurement/tooling harnesses. Everything else is
/// held to the full library contract.
const TOOL_CRATES: &[&str] = &["gdx-cli", "gdx-bench", "gdx-lint"];

/// Walks upward from `start` to the directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// `members = [...]` entries of the root manifest.
fn parse_members(root_manifest: &str) -> Vec<String> {
    // Comments run to end of line, so strip them line-wise first.
    let cleaned: String = root_manifest
        .lines()
        .map(|l| l.split('#').next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");
    let Some(start) = cleaned.find("members") else {
        return Vec::new();
    };
    let Some(open) = cleaned[start..].find('[') else {
        return Vec::new();
    };
    let Some(close) = cleaned[start + open..].find(']') else {
        return Vec::new();
    };
    cleaned[start + open + 1..start + open + close]
        .split(',')
        .filter_map(|item| {
            let item = item.trim().trim_matches('"');
            (!item.is_empty()).then(|| item.to_owned())
        })
        .collect()
}

/// First `name = "..."` of the `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if let Some(h) = line.strip_prefix('[') {
            in_package = h.trim_end_matches(']') == "package";
            continue;
        }
        if in_package {
            if let Some((k, v)) = line.split_once('=') {
                if k.trim() == "name" {
                    return Some(v.trim().trim_matches('"').to_owned());
                }
            }
        }
    }
    None
}

/// All `.rs` files under `dir`, sorted for deterministic output.
/// `fixtures` subtrees are the linter's own test corpus, not code.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lints every workspace crate under `root` and returns the sorted
/// aggregate report.
pub fn check_workspace(root: &Path) -> io::Result<Report> {
    let root_manifest_path = root.join("Cargo.toml");
    let root_manifest = std::fs::read_to_string(&root_manifest_path)?;
    let has_shim = |name: &str| root.join("shims").join(name).is_dir();

    let mut report = Report::default();

    // Root package (the `gdx` meta-crate) plus every member.
    let mut units: Vec<(PathBuf, String)> = vec![(root.to_path_buf(), root_manifest.clone())];
    for member in parse_members(&root_manifest) {
        let dir = root.join(&member);
        let text = std::fs::read_to_string(dir.join("Cargo.toml"))?;
        units.push((dir, text));
    }

    for (dir, manifest_text) in units {
        let manifest_label = rel_label(root, &dir.join("Cargo.toml"));
        report
            .diagnostics
            .extend(lint_manifest(&manifest_label, &manifest_text, &has_shim));
        report.crates_checked += 1;

        // Vendored shims are API stand-ins for external crates; the
        // source contract does not apply to them (only their manifests
        // are checked, above).
        if dir.strip_prefix(root).is_ok_and(|p| p.starts_with("shims")) {
            continue;
        }
        let Some(name) = package_name(&manifest_text) else {
            continue;
        };
        let kind = if TOOL_CRATES.contains(&name.as_str()) {
            CrateKind::Tool
        } else {
            CrateKind::Library
        };
        let src = dir.join("src");
        let crate_root = ["lib.rs", "main.rs"]
            .iter()
            .map(|f| src.join(f))
            .find(|p| p.is_file());

        let mut files = Vec::new();
        rust_files(&src, &mut files)?;
        for path in files {
            let text = std::fs::read_to_string(&path)?;
            let mut ctx = FileCtx {
                crate_name: name.clone(),
                kind,
                root: None,
                // The injected-clock implementation itself: the one
                // library file sanctioned to read the wall clock.
                clock_module: name == "gdx-obs"
                    && path.file_name().is_some_and(|f| f == "clock.rs"),
                // The server's process edge: the one library file
                // sanctioned to spawn threads and build the wall clock
                // it injects into the handler stack.
                net_module: name == "gdx-server" && path.file_name().is_some_and(|f| f == "net.rs"),
            };
            if crate_root.as_deref() == Some(path.as_path()) {
                ctx.root = Some(RootPolicy {
                    require_preamble: kind == CrateKind::Library,
                });
            }
            let label = rel_label(root, &path);
            let outcome = lint_source(&label, &text, &ctx);
            report.diagnostics.extend(outcome.diagnostics);
            report.unsafe_inventory.extend(outcome.unsafe_sites);
            report.allows.extend(outcome.allows);
            report.files_checked += 1;
        }
    }
    report.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_members_list() {
        let text = "\
[workspace]
members = [
    \"crates/automata\",
    \"crates/bench\", # comment
    \"shims/rand\",
]
";
        assert_eq!(
            parse_members(text),
            vec!["crates/automata", "crates/bench", "shims/rand"]
        );
    }

    #[test]
    fn extracts_package_name() {
        let text = "[package]\nname = \"gdx-lint\"\nversion = \"0.1.0\"\n";
        assert_eq!(package_name(text).as_deref(), Some("gdx-lint"));
        assert_eq!(package_name("[workspace]\n"), None);
    }

    #[test]
    fn finds_own_workspace_root() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates/lint").is_dir());
    }
}
