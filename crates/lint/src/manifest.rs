//! The `dep-shim` rule: no non-workspace dependency may appear in a
//! `Cargo.toml` without a vendored `shims/` entry.
//!
//! The build environment is offline; every external crate the workspace
//! "uses" is really a minimal API-compatible stand-in under `shims/`
//! (rand, proptest, criterion). A dependency line pointing at crates.io
//! or a git URL would build on a developer laptop and then break CI —
//! this rule turns that into an immediate lint error instead.
//!
//! The parser is a deliberately small line-oriented TOML subset (the
//! same no-deps idiom as `bench_gate`'s JSON reader): section headers,
//! `name = "version"` strings and `name = { key = value, ... }` inline
//! tables are all the shape a Cargo manifest dependency section has.

use crate::{Diagnostic, Rule};

/// Dependency-carrying sections of a Cargo manifest.
fn is_dep_section(header: &str) -> bool {
    let h = header.trim();
    h == "dependencies"
        || h == "dev-dependencies"
        || h == "build-dependencies"
        || h == "workspace.dependencies"
        || h.ends_with(".dependencies")
        || h.ends_with(".dev-dependencies")
        || h.ends_with(".build-dependencies")
}

/// Lints one manifest. `file` labels diagnostics; `has_shim` answers
/// whether `shims/<name>` exists (injected so the rule is testable
/// without a filesystem).
pub fn lint_manifest(file: &str, text: &str, has_shim: &dyn Fn(&str) -> bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header.trim_end_matches(']').trim_start_matches('[');
            in_deps = is_dep_section(header);
            continue;
        }
        if !in_deps {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        let name = name.trim().trim_matches('"');
        let value = value.trim();
        // Workspace-internal forms: `{ workspace = true }` inherits the
        // root's path entry; `path = "..."` points inside the repo.
        let internal =
            value.contains("workspace") && value.contains("true") || value.contains("path");
        let external_source = value.contains("git") || value.contains("registry");
        if internal && !external_source {
            continue;
        }
        if !has_shim(name) {
            out.push(Diagnostic {
                rule: Rule::DepShim,
                severity: Rule::DepShim.severity(),
                file: file.to_owned(),
                line: (idx + 1) as u32,
                message: format!(
                    "dependency `{name}` is not workspace-internal and has no vendored \
                     shims/{name} entry — the build environment is offline"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(text: &str, shims: &[&str]) -> Vec<(u32, String)> {
        let shims: Vec<String> = shims.iter().map(|s| s.to_string()).collect();
        lint_manifest("Cargo.toml", text, &|n| shims.iter().any(|s| s == n))
            .into_iter()
            .map(|d| (d.line, d.message))
            .collect()
    }

    #[test]
    fn workspace_and_path_deps_pass() {
        let text = "\
[package]
name = \"x\"

[dependencies]
gdx_common = { workspace = true }
gdx_graph = { path = \"../graph\", package = \"gdx-graph\" }

[dev-dependencies]
proptest = { workspace = true }
";
        assert!(run(text, &[]).is_empty());
    }

    #[test]
    fn crates_io_dep_without_shim_fails() {
        let text = "[dependencies]\nserde = \"1.0\"\n";
        let fired = run(text, &[]);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].0, 2);
        assert!(fired[0].1.contains("serde"));
    }

    #[test]
    fn crates_io_dep_with_shim_passes() {
        let text = "[dependencies]\nrand = { workspace = true }\ncriterion = \"0.5\"\n";
        assert!(run(text, &["criterion"]).is_empty());
    }

    #[test]
    fn git_dep_fails_even_with_path_noise() {
        let text = "[dependencies]\nfoo = { git = \"https://x\", path = \"sub\" }\n";
        assert_eq!(run(text, &[]).len(), 1);
    }

    #[test]
    fn non_dep_sections_are_ignored() {
        let text = "[package]\nname = \"x\"\nversion = \"1.0\"\n[features]\nfast = []\n";
        assert!(run(text, &[]).is_empty());
    }

    #[test]
    fn target_specific_dep_sections_are_checked() {
        let text = "[target.'cfg(unix)'.dependencies]\nlibc = \"0.2\"\n";
        assert_eq!(run(text, &[]).len(), 1);
    }
}
