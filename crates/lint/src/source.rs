//! Per-file rule engine: token-sequence matchers over the lexed stream,
//! `#[cfg(test)]` region exemption, the allow/expect comment machinery
//! and unused-allow detection.

use crate::lexer::{lex, CommentLine, Tok, TokKind};
use crate::{AllowRecord, Diagnostic, FileCtx, Rule, UnsafeSite};
use std::collections::BTreeSet;

/// Result of linting one source file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    pub diagnostics: Vec<Diagnostic>,
    pub unsafe_sites: Vec<UnsafeSite>,
    pub allows: Vec<AllowRecord>,
}

/// Hash-ordered collection type names (the workspace's `FxHashMap` /
/// `FxHashSet` are std hash tables under a deterministic hasher — their
/// iteration order is still hash order, not insertion order, so the
/// determinism contract treats them identically).
const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Containers a hash iteration may be re-aggregated into without
/// leaking order: another hash table, or a sorted BTree.
const ORDER_FREE_TYPES: &[&str] = &[
    "HashMap",
    "HashSet",
    "FxHashMap",
    "FxHashSet",
    "BTreeMap",
    "BTreeSet",
];

/// Iterator-consuming methods whose result is independent of the
/// iteration order (for a deterministic value set).
const ORDER_FREE_SINKS: &[&str] = &["count", "sum", "min", "max", "any", "all"];

/// Methods that begin an iteration over their receiver.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Guard methods that yield a lock guard; `.unwrap()` on them condemns
/// every later caller after one poisoning panic.
const LOCK_METHODS: &[&str] = &["lock", "try_lock", "read", "try_read", "write", "try_write"];

/// Keywords that rule out "identifier before `[` means indexing".
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "trait", "type", "union", "unsafe", "use", "where", "while",
    "yield",
];

/// A parsed `// gdx-lint: allow(rule) — reason` comment.
#[derive(Debug)]
struct Allow {
    line: u32,
    /// Line of code the allow applies to (its own line for a trailing
    /// comment, the next code line for a standalone one).
    target: u32,
    rule: Rule,
    reason: String,
    used: bool,
}

/// Lints `text` as the source of `file` under `ctx`.
pub fn lint_source(file: &str, text: &str, ctx: &FileCtx) -> FileOutcome {
    let lexed = lex(text);
    let (toks, skipped) = filter_test_regions(&lexed.tokens);
    let mut out = FileOutcome::default();

    // --- allow comments -------------------------------------------------
    let mut allows: Vec<Allow> = Vec::new();
    for c in &lexed.comments {
        if skipped.iter().any(|&(a, b)| c.line >= a && c.line <= b) {
            continue; // test code is exempt, so its allows are inert
        }
        match parse_directive(c) {
            Directive::None | Directive::Expect => {}
            Directive::Allow { rule, reason } => {
                let trailing = lexed.tokens.iter().any(|t| t.line == c.line);
                let target = if trailing {
                    c.line
                } else {
                    lexed
                        .tokens
                        .iter()
                        .map(|t| t.line)
                        .find(|&l| l > c.line)
                        .unwrap_or(c.line)
                };
                allows.push(Allow {
                    line: c.line,
                    target,
                    rule,
                    reason,
                    used: false,
                });
            }
            Directive::Bad(msg) => out.diagnostics.push(Diagnostic {
                rule: Rule::BadAllow,
                severity: Rule::BadAllow.severity(),
                file: file.to_owned(),
                line: c.line,
                message: msg,
            }),
        }
    }

    // --- token rules ----------------------------------------------------
    let mut raw: Vec<(Rule, u32, String)> = Vec::new();
    if ctx.applies(Rule::WallClock) {
        check_wall_clock(&toks, &mut raw);
    }
    if ctx.applies(Rule::ClockInject) {
        check_clock_inject(&toks, &mut raw);
    }
    if ctx.applies(Rule::ThreadSpawn) {
        check_thread_spawn(&toks, &mut raw);
    }
    if ctx.applies(Rule::PanicMacro) {
        check_panic_macro(&toks, &mut raw);
    }
    if ctx.applies(Rule::LockUnwrap) {
        check_lock_unwrap(&toks, &mut raw);
    }
    if ctx.applies(Rule::SliceIndex) {
        check_slice_index(&toks, &mut raw);
    }
    if ctx.applies(Rule::HashIter) {
        check_hash_iter(&toks, &mut raw);
    }
    if ctx.applies(Rule::UnsafeCode) {
        check_unsafe(
            &toks,
            &lexed.comments,
            file,
            &mut raw,
            &mut out.unsafe_sites,
        );
    }

    // --- crate-root requirements ---------------------------------------
    // Needles are written in normalized token form: every token
    // space-separated, so `::` appears as `: :`.
    if let Some(root) = &ctx.root {
        let joined = normalized(&lexed.tokens);
        if !joined.contains("# ! [ forbid ( unsafe_code ) ]") {
            raw.push((
                Rule::ForbidUnsafe,
                1,
                "crate root lacks `#![forbid(unsafe_code)]`".to_owned(),
            ));
        }
        if root.require_preamble
            && !joined.contains(
                "# ! [ cfg_attr ( not ( test ) , deny ( clippy : : unwrap_used , clippy : : \
                 expect_used ) ) ]",
            )
        {
            raw.push((
                Rule::DenyPreamble,
                1,
                "library crate root lacks the `#![cfg_attr(not(test), \
                 deny(clippy::unwrap_used, clippy::expect_used))]` preamble"
                    .to_owned(),
            ));
        }
    }

    // --- suppression + dedup --------------------------------------------
    raw.sort_by(|a, b| (a.1, a.0, &a.2).cmp(&(b.1, b.0, &b.2)));
    raw.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
    for (rule, line, message) in raw {
        // File-level rules are suppressed by an allow anywhere in the
        // file; line rules require the allow on (or just above) the
        // offending line.
        let file_level = matches!(rule, Rule::ForbidUnsafe | Rule::DenyPreamble);
        let suppressed = allows
            .iter_mut()
            .find(|a| a.rule == rule && (file_level || a.target == line))
            .map(|a| a.used = true)
            .is_some();
        if !suppressed {
            out.diagnostics.push(Diagnostic {
                rule,
                severity: rule.severity(),
                file: file.to_owned(),
                line,
                message,
            });
        }
    }
    for a in &allows {
        if !a.used {
            out.diagnostics.push(Diagnostic {
                rule: Rule::UnusedAllow,
                severity: Rule::UnusedAllow.severity(),
                file: file.to_owned(),
                line: a.line,
                message: format!(
                    "stale suppression: `allow({})` matches no diagnostic on line {}",
                    a.rule.id(),
                    a.target
                ),
            });
        }
        out.allows.push(AllowRecord {
            file: file.to_owned(),
            line: a.line,
            rule: a.rule,
            reason: a.reason.clone(),
            used: a.used,
        });
    }
    out
}

/// Parsed form of a `gdx-lint:` comment.
enum Directive {
    None,
    Expect,
    Allow { rule: Rule, reason: String },
    Bad(String),
}

fn parse_directive(c: &CommentLine) -> Directive {
    let Some(rest) = c.text.trim().strip_prefix("gdx-lint:") else {
        return Directive::None;
    };
    let rest = rest.trim_start();
    if rest.starts_with("expect(") {
        return Directive::Expect; // fixture marker, inert in real runs
    }
    let Some(body) = rest.strip_prefix("allow(") else {
        return Directive::Bad(format!(
            "unrecognized gdx-lint directive `{}` (expected `allow(<rule>) — <reason>`)",
            rest.split_whitespace().next().unwrap_or("")
        ));
    };
    let Some(close) = body.find(')') else {
        return Directive::Bad("malformed allow: missing `)`".to_owned());
    };
    let id = body[..close].trim();
    let Some(rule) = Rule::from_id(id) else {
        return Directive::Bad(format!("allow names unknown rule `{id}`"));
    };
    let mut reason = body[close + 1..].trim_start();
    for sep in ["—", "–", "--", "-", ":"] {
        if let Some(r) = reason.strip_prefix(sep) {
            reason = r;
            break;
        }
    }
    let reason = reason.trim();
    if reason.is_empty() {
        return Directive::Bad(format!(
            "allow({id}) carries no reason — suppressions must be auditable"
        ));
    }
    Directive::Allow {
        rule,
        reason: reason.to_owned(),
    }
}

/// Drops tokens belonging to `#[cfg(test)]` / `#[test]` items and
/// returns the kept tokens plus the skipped line ranges.
fn filter_test_regions<'a>(toks: &[Tok<'a>]) -> (Vec<Tok<'a>>, Vec<(u32, u32)>) {
    let mut out = Vec::with_capacity(toks.len());
    let mut skipped = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let close = matching(toks, i + 1, '[', ']');
            let attr = &toks[i + 2..close.min(toks.len())];
            if is_test_attr(attr) {
                let start_line = toks[i].line;
                let mut j = close + 1;
                // Consume any further attributes on the same item.
                while toks.get(j).is_some_and(|t| t.is_punct('#'))
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    j = matching(toks, j + 1, '[', ']') + 1;
                }
                // Skip the item: to `;` at depth 0, or through the
                // first brace-balanced `{ ... }`.
                let mut depth = 0i32;
                while j < toks.len() {
                    let t = &toks[j];
                    if t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if t.is_punct(';') && depth == 0 {
                        break;
                    }
                    j += 1;
                }
                let end_line = toks.get(j).map_or(start_line, |t| t.line);
                skipped.push((start_line, end_line));
                i = j + 1;
                continue;
            }
        }
        out.push(toks[i]);
        i += 1;
    }
    (out, skipped)
}

/// `#[test]`, `#[cfg(test)]` (and `#[cfg(all(test, ...))]`).
fn is_test_attr(attr: &[Tok<'_>]) -> bool {
    match attr.first() {
        Some(t) if t.is_ident("test") => attr.len() == 1,
        Some(t) if t.is_ident("cfg") => {
            attr.get(1).is_some_and(|t| t.is_punct('('))
                && (attr.get(2).is_some_and(|t| t.is_ident("test"))
                    || (attr.get(2).is_some_and(|t| t.is_ident("all"))
                        && attr.get(4).is_some_and(|t| t.is_ident("test"))))
        }
        _ => false,
    }
}

/// Index of the punct closing the group opened at `open_idx`.
fn matching(toks: &[Tok<'_>], open_idx: usize, open: char, close: char) -> usize {
    let mut depth = 0i32;
    let mut j = open_idx;
    while j < toks.len() {
        if toks[j].is_punct(open) {
            depth += 1;
        } else if toks[j].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Tokens joined with single spaces, for attribute needle search.
fn normalized(toks: &[Tok<'_>]) -> String {
    let mut s = String::with_capacity(toks.len() * 4);
    for t in toks {
        s.push_str(t.text);
        s.push(' ');
    }
    s
}

// ---------------------------------------------------------------------
// Rule matchers
// ---------------------------------------------------------------------

fn check_wall_clock(toks: &[Tok<'_>], out: &mut Vec<(Rule, u32, String)>) {
    for (i, t) in toks.iter().enumerate() {
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            out.push((
                Rule::WallClock,
                t.line,
                format!(
                    "`{}::now()` in a library crate: results must be functions of inputs, \
                     not of the clock (time only in cli/bench/sim)",
                    t.text
                ),
            ));
        }
    }
}

fn check_clock_inject(toks: &[Tok<'_>], out: &mut Vec<(Rule, u32, String)>) {
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("MonotonicClock")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            out.push((
                Rule::ClockInject,
                t.line,
                "`MonotonicClock` constructed in a library crate: take an injected \
                 `gdx_obs::Clock` (`&dyn Clock` / `Arc<dyn Clock>`) instead — only entry \
                 points (cli/bench/sim) decide which clock runs"
                    .to_owned(),
            ));
        }
    }
}

fn check_thread_spawn(toks: &[Tok<'_>], out: &mut Vec<(Rule, u32, String)>) {
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("thread")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks
                .get(i + 3)
                .is_some_and(|t| t.is_ident("spawn") || t.is_ident("scope"))
        {
            let what = toks[i + 3].text;
            out.push((
                Rule::ThreadSpawn,
                t.line,
                format!(
                    "`thread::{what}` outside gdx-runtime: all parallelism goes through \
                     the deterministic work-stealing pool (gdx_runtime::Runtime)"
                ),
            ));
        }
    }
}

fn check_panic_macro(toks: &[Tok<'_>], out: &mut Vec<(Rule, u32, String)>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && matches!(t.text, "panic" | "todo" | "unimplemented" | "dbg")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
        {
            out.push((
                Rule::PanicMacro,
                t.line,
                format!(
                    "`{}!` in non-test library code: return a typed GdxError instead \
                     (the sim no-panic contract, see ARCHITECTURE.md)",
                    t.text
                ),
            ));
        }
    }
}

fn check_lock_unwrap(toks: &[Tok<'_>], out: &mut Vec<(Rule, u32, String)>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && LOCK_METHODS.contains(&t.text)
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(i + 4)
                .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
        {
            out.push((
                Rule::LockUnwrap,
                t.line,
                format!(
                    "`.{}().{}()` on a lock guard: recover from poisoning with \
                     `.unwrap_or_else(std::sync::PoisonError::into_inner)` so one caught \
                     panic cannot condemn every later caller",
                    t.text,
                    toks[i + 4].text
                ),
            ));
        }
    }
}

fn check_slice_index(toks: &[Tok<'_>], out: &mut Vec<(Rule, u32, String)>) {
    for (i, t) in toks.iter().enumerate() {
        if !t.is_punct('[') || i == 0 {
            continue;
        }
        let prev = &toks[i - 1];
        let is_recv = match prev.kind {
            TokKind::Ident => !KEYWORDS.contains(&prev.text),
            TokKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
            TokKind::Lit => false,
        };
        if !is_recv {
            continue;
        }
        let close = matching(toks, i, '[', ']');
        let sub = &toks[i + 1..close.min(toks.len())];
        // `x[0]` (literal index) and `x[..]` (full range) cannot drift
        // out of bounds the way a computed index can; stay quiet.
        let literal = sub.len() == 1
            && sub[0].kind == TokKind::Lit
            && sub[0].text.starts_with(|c: char| c.is_ascii_digit());
        let full_range = sub.len() == 2 && sub.iter().all(|t| t.is_punct('.'));
        if sub.is_empty() || literal || full_range {
            continue;
        }
        out.push((
            Rule::SliceIndex,
            t.line,
            format!(
                "direct indexing `{}[..]` may panic: prefer `get()` or carry an allow \
                 naming the bounds invariant",
                prev.text
            ),
        ));
    }
}

fn check_unsafe(
    toks: &[Tok<'_>],
    comments: &[CommentLine],
    file: &str,
    out: &mut Vec<(Rule, u32, String)>,
    inventory: &mut Vec<UnsafeSite>,
) {
    let mut seen = BTreeSet::new();
    for t in toks {
        if !t.is_ident("unsafe") || !seen.insert(t.line) {
            continue;
        }
        let annotated = comments
            .iter()
            .any(|c| c.line + 3 >= t.line && c.line <= t.line && c.text.contains("SAFETY:"));
        inventory.push(UnsafeSite {
            file: file.to_owned(),
            line: t.line,
            annotated,
        });
        if !annotated {
            out.push((
                Rule::UnsafeCode,
                t.line,
                "`unsafe` without a `// SAFETY:` comment on the preceding line(s): every \
                 site must state the invariant it relies on"
                    .to_owned(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// hash-iter: the determinism flagship
// ---------------------------------------------------------------------

fn check_hash_iter(toks: &[Tok<'_>], out: &mut Vec<(Rule, u32, String)>) {
    let names = collect_hash_names(toks);
    if names.is_empty() {
        return;
    }
    // (a) method-call iteration: `recv.iter()` etc.
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && ITER_METHODS.contains(&t.text)
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            let Some(recv) = receiver_before(toks, i - 1) else {
                continue;
            };
            if names.contains(&recv) && !sanctioned(toks, i, &names) {
                out.push((Rule::HashIter, t.line, hash_iter_msg(&recv, t.text)));
            }
        }
    }
    // (b) `for pat in [&][mut] recv { ... }`
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("for") {
            continue;
        }
        // `for<'a>` HRTB / `impl Trait for T`: no `in` before `{`/`;`.
        let Some(in_idx) = find_for_in(toks, i) else {
            continue;
        };
        let Some(brace) = toks[in_idx..]
            .iter()
            .position(|t| t.is_punct('{'))
            .map(|p| p + in_idx)
        else {
            continue;
        };
        let mut expr = &toks[in_idx + 1..brace];
        while expr
            .first()
            .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
        {
            expr = &expr[1..];
        }
        // The expr must be a plain path (the `recv.iter()` form is
        // already caught by (a)).
        if expr.is_empty() || expr.len() > 3 {
            continue;
        }
        let recv = normalized(expr).trim_end().replace(" . ", ".");
        if names.contains(&recv) {
            out.push((Rule::HashIter, t.line, hash_iter_msg(&recv, "for-in")));
        }
    }
}

fn hash_iter_msg(recv: &str, how: &str) -> String {
    format!(
        "iteration over hash-ordered `{recv}` ({how}): hash order must not leak — sort \
         the result, re-aggregate into a hash/BTree container, or carry an allow \
         naming why order cannot escape"
    )
}

/// Index of the loop's `in` keyword, or `None` when `for` is not a
/// loop (HRTB, `impl ... for ...`).
fn find_for_in(toks: &[Tok<'_>], for_idx: usize) -> Option<usize> {
    if toks.get(for_idx + 1).is_some_and(|t| t.is_punct('<')) {
        return None;
    }
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(for_idx + 1).take(64) {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_ident("in") {
            return Some(j);
        } else if depth == 0 && (t.is_punct('{') || t.is_punct(';')) {
            return None;
        }
    }
    None
}

/// Names (plain and `self.`-qualified) whose declared or constructed
/// type is hash-ordered, collected from the same file. Per-file only —
/// cross-file types need an allow at the use site; the trade is
/// documented in ARCHITECTURE.md.
fn collect_hash_names(toks: &[Tok<'_>]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let field_spans = struct_body_spans(toks);
    for (i, t) in toks.iter().enumerate() {
        // `name: ... HashX ...` (let/field/param annotation). Skip path
        // segments (`x::y`) and struct-literal fields by requiring the
        // next `:` to not be part of `::`.
        if t.kind == TokKind::Ident
            && !KEYWORDS.contains(&t.text)
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && (i == 0 || !toks[i - 1].is_punct(':'))
        {
            // Only the *outermost* annotated type counts: a
            // `Vec<FxHashMap<..>>` binding iterates in Vec order, so it
            // must not be recorded as hash-ordered. The outer type is
            // the last segment of the leading path (`&`/`mut`/lifetime
            // prefixes skipped).
            let mut j = i + 2;
            while toks
                .get(j)
                .is_some_and(|t| t.is_punct('&') || t.is_ident("mut") || t.is_ident("dyn"))
            {
                j += 1;
            }
            let mut outer: Option<&str> = None;
            while let Some(seg) = toks.get(j).filter(|t| t.kind == TokKind::Ident) {
                outer = Some(seg.text);
                if toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
                {
                    j += 3;
                } else {
                    break;
                }
            }
            if outer.is_some_and(|o| HASH_TYPES.contains(&o)) {
                // A struct/enum field is only reachable as `self.name`
                // (or through another binding the rules track on their
                // own); recording the bare name would condemn unrelated
                // same-named locals and parameters across the file.
                if !field_spans.iter().any(|&(s, e)| s <= i && i < e) {
                    names.insert(t.text.to_owned());
                }
                names.insert(format!("self.{}", t.text));
            }
        }
        // `let [mut] name = ... HashX:: ...;`
        if t.is_ident("let") {
            let mut k = i + 1;
            if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            let Some(name) = toks.get(k).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            if !toks.get(k + 1).is_some_and(|t| t.is_punct('=')) {
                continue;
            }
            // Constructor form: rhs must *start* with a hash-type path
            // (`FxHashMap::default()`), not merely mention one inside a
            // `vec![..]` of maps or a nested call.
            if toks.get(k + 2).is_some_and(|t| t.kind == TokKind::Ident)
                && toks.get(k + 3).is_some_and(|t| !t.is_punct('!'))
            {
                for (off, rhs) in toks.iter().enumerate().skip(k + 2).take(8) {
                    if rhs.is_punct('(') || rhs.is_punct(';') {
                        break;
                    }
                    if rhs.kind == TokKind::Ident
                        && HASH_TYPES.contains(&rhs.text)
                        && toks
                            .get(off + 1)
                            .is_some_and(|t| t.is_punct(':') || t.is_punct('<'))
                    {
                        names.insert(name.text.to_owned());
                        names.insert(format!("self.{}", name.text));
                        break;
                    }
                }
            }
        }
    }
    names
}

/// Token-index spans of `struct`/`enum`/`union` bodies — regions whose
/// `name: Type` annotations declare fields, not bindings.
fn struct_body_spans(toks: &[Tok<'_>]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("struct") || t.is_ident("enum") || t.is_ident("union") {
            // Skip the name and any generic parameter list to the body
            // `{` (tuple/unit structs end at `(` or `;` — no field body).
            let mut angle = 0i32;
            let mut j = i + 1;
            let mut body = None;
            while let Some(n) = toks.get(j) {
                if n.is_punct('<') {
                    angle += 1;
                } else if n.is_punct('>') {
                    angle -= 1;
                } else if angle == 0 && n.is_punct('{') {
                    body = Some(j);
                    break;
                } else if angle == 0 && (n.is_punct('(') || n.is_punct(';')) {
                    break;
                }
                j += 1;
            }
            if let Some(open) = body {
                let mut depth = 0i32;
                let mut k = open;
                while let Some(n) = toks.get(k) {
                    if n.is_punct('{') {
                        depth += 1;
                    } else if n.is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                spans.push((open, k));
                i = k;
            }
        }
        i += 1;
    }
    spans
}

/// Dotted receiver path ending at the `.` punct `dot_idx` (`x`,
/// `self.field`); `None` when the receiver is a computed expression.
fn receiver_before(toks: &[Tok<'_>], dot_idx: usize) -> Option<String> {
    let mut parts: Vec<&str> = Vec::new();
    let mut j = dot_idx; // points at a `.`
    loop {
        let seg = toks.get(j.checked_sub(1)?)?;
        if seg.kind != TokKind::Ident {
            return None;
        }
        parts.push(seg.text);
        match j.checked_sub(2).map(|k| &toks[k]) {
            Some(p) if p.is_punct('.') => {
                // `).field.` / `].field.` — computed receiver.
                if j >= 3 && (toks[j - 3].is_punct(')') || toks[j - 3].is_punct(']')) {
                    return None;
                }
                j -= 2;
            }
            Some(p) if p.is_punct(')') || p.is_punct(']') || p.is_punct('"') => return None,
            _ => break,
        }
        if parts.len() > 3 {
            return None;
        }
    }
    parts.reverse();
    Some(parts.join("."))
}

/// Whether the statement around the iteration at token `idx` is
/// provably order-free: re-aggregates into a hash/BTree container,
/// ends in an order-insensitive sink, extends a hash container, or
/// collects into a binding that is sorted within the next few lines.
fn sanctioned(toks: &[Tok<'_>], idx: usize, hash_names: &BTreeSet<String>) -> bool {
    let (start, end) = statement_extent(toks, idx);
    let stmt = &toks[start..end.min(toks.len())];

    // `let [mut] name : ... OrderFree ...` annotation before `=`.
    let mut k = 0;
    if stmt.first().is_some_and(|t| t.is_ident("let")) {
        k = 1;
        if stmt.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        if stmt.get(k + 1).is_some_and(|t| t.is_punct(':')) {
            for ty in stmt.iter().skip(k + 2) {
                if ty.is_punct('=') {
                    break;
                }
                if ty.kind == TokKind::Ident && ORDER_FREE_TYPES.contains(&ty.text) {
                    return true;
                }
            }
        }
    }

    // `recv.extend(hash_iter)` where recv is itself hash-ordered. The
    // statement extent stops at the call's `(`, so the receiver sits
    // just *before* `start`: `recv . extend (`.
    if start >= 3
        && toks[start - 1].is_punct('(')
        && toks[start - 2].is_ident("extend")
        && toks[start - 3].is_punct('.')
    {
        if let Some(recv) = receiver_before(toks, start - 3) {
            if hash_names.contains(&recv) {
                return true;
            }
        }
    }
    if let Some(ext) = stmt.iter().position(|t| t.is_ident("extend")) {
        if ext >= 2 && stmt[ext - 1].is_punct('.') {
            let recv = normalized(&stmt[..ext - 1]).trim_end().replace(" . ", ".");
            if hash_names.contains(&recv) {
                return true;
            }
        }
    }

    for (j, t) in stmt.iter().enumerate() {
        // `collect::<OrderFree<..>>()`
        if t.is_ident("collect")
            && stmt.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && stmt.get(j + 2).is_some_and(|t| t.is_punct(':'))
            && stmt.get(j + 3).is_some_and(|t| t.is_punct('<'))
            && stmt
                .iter()
                .skip(j + 4)
                .take(8)
                .any(|t| t.kind == TokKind::Ident && ORDER_FREE_TYPES.contains(&t.text))
        {
            return true;
        }
        // `.count()` / `.sum()` / `.min()` / ... sink in the chain.
        if t.kind == TokKind::Ident
            && ORDER_FREE_SINKS.contains(&t.text)
            && j > 0
            && stmt[j - 1].is_punct('.')
            && stmt
                .get(j + 1)
                .is_some_and(|t| t.is_punct('(') || t.is_punct(':'))
        {
            return true;
        }
    }

    // Sort lookahead: `let [mut] name ... ;` followed within ~120
    // tokens by `name.sort*`.
    if stmt.first().is_some_and(|t| t.is_ident("let")) {
        if let Some(name) = stmt.get(k).filter(|t| t.kind == TokKind::Ident) {
            let after = &toks[end.min(toks.len())..];
            for (j, t) in after.iter().enumerate().take(120) {
                if t.is_ident(name.text)
                    && after.get(j + 1).is_some_and(|t| t.is_punct('.'))
                    && after
                        .get(j + 2)
                        .is_some_and(|t| t.kind == TokKind::Ident && t.text.starts_with("sort"))
                {
                    return true;
                }
            }
        }
    }
    false
}

/// `[start, end)` token range of the statement containing `idx`:
/// backward to the previous `;`/`{`/`}` at relative depth 0, forward
/// through the terminating `;`.
fn statement_extent(toks: &[Tok<'_>], idx: usize) -> (usize, usize) {
    let mut start = idx;
    let mut depth = 0i32;
    for j in (0..idx).rev() {
        let t = &toks[j];
        if t.is_punct(')') || t.is_punct(']') {
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') {
            if depth == 0 {
                start = j + 1;
                break;
            }
            depth -= 1;
        } else if depth == 0 && (t.is_punct(';') || t.is_punct('{') || t.is_punct('}')) {
            // A `}` at depth 0 closes the *previous* statement's block
            // (for/if/match) — a statement boundary, same as `;`.
            start = j + 1;
            break;
        }
        start = j;
        if idx - j > 300 {
            break;
        }
    }
    let mut end = idx;
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(idx) {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            if depth == 0 {
                end = j;
                break;
            }
            depth -= 1;
        } else if depth == 0 && (t.is_punct(';') || t.is_punct('{') || t.is_punct('}')) {
            // `{` at depth 0 opens a body (for-loop, match): the
            // chain-sanction scan must not read past it into the block.
            end = if t.is_punct(';') { j + 1 } else { j };
            break;
        }
        end = j + 1;
        if j - idx > 300 {
            break;
        }
    }
    (start, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileCtx;

    fn lint_lib(src: &str) -> Vec<(Rule, u32)> {
        lint_source("t.rs", src, &FileCtx::library("gdx-test"))
            .diagnostics
            .iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn wall_clock_fires_and_tool_crates_are_exempt() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(lint_lib(src), vec![(Rule::WallClock, 1)]);
        let tool = lint_source("t.rs", src, &FileCtx::tool("gdx-bench"));
        assert!(tool.diagnostics.is_empty());
    }

    #[test]
    fn clock_inject_fires_on_construction_but_not_on_injection() {
        let src = "fn f() { let c = MonotonicClock::new(); }";
        assert_eq!(lint_lib(src), vec![(Rule::ClockInject, 1)]);
        // Taking the trait is the sanctioned idiom.
        let inject = "fn f(clock: &dyn Clock) -> u64 { clock.now_micros() }";
        assert!(lint_lib(inject).is_empty());
        // The defining crate and the sim harness are exempt.
        for exempt in ["gdx-obs", "gdx-sim"] {
            let out = lint_source("t.rs", src, &FileCtx::library(exempt));
            assert!(out.diagnostics.is_empty(), "{exempt}");
        }
    }

    #[test]
    fn panic_macros_fire_outside_tests_only() {
        let src = "fn f() { panic!(\"x\"); }\n\
                   #[cfg(test)]\nmod tests {\n  fn g() { panic!(\"ok in tests\"); }\n}\n";
        assert_eq!(lint_lib(src), vec![(Rule::PanicMacro, 1)]);
    }

    #[test]
    fn lock_unwrap_fires_but_recovery_idiom_does_not() {
        assert_eq!(
            lint_lib("fn f() { m.lock().unwrap(); }"),
            vec![(Rule::LockUnwrap, 1)]
        );
        assert!(lint_lib(
            "fn f() { m.lock().unwrap_or_else(std::sync::PoisonError::into_inner); }"
        )
        .is_empty());
    }

    #[test]
    fn trailing_allow_suppresses_and_is_recorded_used() {
        let src = "fn f() { panic!(\"x\"); } // gdx-lint: allow(panic-macro) — demo reason\n";
        let out = lint_source("t.rs", src, &FileCtx::library("gdx-test"));
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
        assert_eq!(out.allows.len(), 1);
        assert!(out.allows[0].used);
        assert_eq!(out.allows[0].reason, "demo reason");
    }

    #[test]
    fn standalone_allow_targets_next_code_line() {
        let src = "// gdx-lint: allow(wall-clock) — profiling hook\n\
                   fn f() { let t = Instant::now(); }\n";
        let out = lint_source("t.rs", src, &FileCtx::library("gdx-test"));
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    }

    #[test]
    fn unused_allow_fails_the_run() {
        let src = "// gdx-lint: allow(panic-macro) — stale\nfn f() {}\n";
        assert_eq!(lint_lib(src), vec![(Rule::UnusedAllow, 1)]);
    }

    #[test]
    fn allow_without_reason_is_bad() {
        let src = "fn f() { panic!(); } // gdx-lint: allow(panic-macro)\n";
        let fired = lint_lib(src);
        assert!(fired.contains(&(Rule::BadAllow, 1)), "{fired:?}");
        // The violation itself still fires: a reasonless allow is void.
        assert!(fired.contains(&(Rule::PanicMacro, 1)), "{fired:?}");
    }

    #[test]
    fn hash_iter_fires_on_for_and_method_iteration() {
        let src = "\
fn f(m: FxHashMap<u32, u32>) {
    for k in m.keys() { use_it(k); }
    let v: Vec<u32> = m.values().copied().collect();
}";
        let fired = lint_lib(src);
        assert!(fired.contains(&(Rule::HashIter, 2)), "{fired:?}");
        assert!(fired.contains(&(Rule::HashIter, 3)), "{fired:?}");
    }

    #[test]
    fn hash_iter_sanctions_order_free_statements() {
        let src = "\
fn f(m: FxHashMap<u32, u32>, s: FxHashSet<u32>) {
    let copy: FxHashSet<u32> = s.iter().copied().collect();
    let n = m.keys().count();
    let top = m.values().max();
    let mut v: Vec<u32> = s.iter().copied().collect();
    v.sort_unstable();
    let other: FxHashSet<u32> = FxHashSet::default();
    let b = s.iter().copied().collect::<BTreeSet<u32>>();
}";
        assert!(lint_lib(src).is_empty(), "{:?}", lint_lib(src));
    }

    #[test]
    fn hash_iter_sees_struct_fields_via_self() {
        let src = "\
struct S { memo: FxHashMap<u32, u32> }
impl S {
    fn f(&self) -> Vec<u32> { self.memo.keys().copied().collect() }
}";
        let fired = lint_lib(src);
        assert!(fired.contains(&(Rule::HashIter, 3)), "{fired:?}");
    }

    #[test]
    fn slice_index_is_warn_and_literal_or_range_is_exempt() {
        let src = "\
fn f(xs: &[u32], i: usize) -> u32 {
    let a = xs[i];
    let b = xs[0];
    let c = &xs[..];
    let d = &xs[1..i];
    a
}";
        let out = lint_source("t.rs", src, &FileCtx::library("gdx-test"));
        let warns: Vec<u32> = out
            .diagnostics
            .iter()
            .filter(|d| d.rule == Rule::SliceIndex)
            .map(|d| d.line)
            .collect();
        assert_eq!(warns, vec![2, 5]);
        assert!(out
            .diagnostics
            .iter()
            .all(|d| d.severity == crate::Severity::Warn));
    }

    #[test]
    fn unsafe_requires_safety_comment_and_is_inventoried() {
        let bad = "fn f() { unsafe { g(); } }";
        let out = lint_source("t.rs", bad, &FileCtx::library("gdx-test"));
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.unsafe_sites.len(), 1);
        assert!(!out.unsafe_sites[0].annotated);

        let good = "// SAFETY: g has no preconditions here\nfn f() { unsafe { g(); } }";
        let out = lint_source("t.rs", good, &FileCtx::library("gdx-test"));
        assert!(out.diagnostics.is_empty());
        assert_eq!(out.unsafe_sites.len(), 1);
        assert!(out.unsafe_sites[0].annotated);
    }

    #[test]
    fn crate_root_requirements() {
        let mut ctx = FileCtx::library("gdx-test");
        ctx.root = Some(crate::RootPolicy {
            require_preamble: true,
        });
        let bare = lint_source("lib.rs", "pub fn f() {}", &ctx);
        let rules: Vec<Rule> = bare.diagnostics.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&Rule::ForbidUnsafe));
        assert!(rules.contains(&Rule::DenyPreamble));

        let full = "#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]\n\
                    #![forbid(unsafe_code)]\npub fn f() {}";
        assert!(lint_source("lib.rs", full, &ctx).diagnostics.is_empty());
    }

    #[test]
    fn thread_spawn_and_scope_fire_outside_runtime() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(lint_lib(src), vec![(Rule::ThreadSpawn, 1)]);
        let rt = lint_source("t.rs", src, &FileCtx::library("gdx-runtime"));
        assert!(rt.diagnostics.is_empty());
    }
}
