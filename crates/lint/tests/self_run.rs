//! The shipped workspace must satisfy its own contract: running the
//! linter over the repository from any crate directory finds zero
//! errors, zero stale allows and zero unsafe code. This is the test
//! that turns the rule catalog from documentation into an invariant.

use gdx_lint::{check_workspace, find_workspace_root, Severity};
use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let report = check_workspace(&root).expect("walking the workspace");

    assert!(report.files_checked > 50, "walker saw the whole tree");
    assert!(report.crates_checked > 15, "walker saw all members + shims");

    let errors: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| format!("{}:{}: [{}] {}", d.file, d.line, d.rule.id(), d.message))
        .collect();
    assert!(
        errors.is_empty(),
        "workspace violates its own contract:\n{}",
        errors.join("\n")
    );

    let stale: Vec<String> = report
        .allows
        .iter()
        .filter(|a| !a.used)
        .map(|a| format!("{}:{}: allow({})", a.file, a.line, a.rule.id()))
        .collect();
    assert!(
        stale.is_empty(),
        "stale suppressions:\n{}",
        stale.join("\n")
    );

    assert!(
        report.unsafe_inventory.is_empty(),
        "unsafe appeared; inventory: {:?}",
        report.unsafe_inventory
    );
    assert!(report.is_clean());
}
