//! Fixture sharpness harness.
//!
//! Every file under `fixtures/violations/` carries `gdx-lint:
//! expect(<rule>)` markers; the linter must fire *exactly* at the
//! marked (rule, line) pairs — nothing missing, nothing extra. The
//! `fixtures/clean/` twins must produce zero diagnostics. Root and
//! manifest fixtures are asserted by dedicated tests (their findings
//! anchor to line 1 / manifest lines, where in-file markers cannot
//! point). Finally, a coverage test proves the corpus exercises the
//! whole rule catalog — a new rule without a fixture fails here.

use gdx_lint::source::lint_source;
use gdx_lint::{FileCtx, Rule, Severity, ALL_RULES};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixture(sub: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(sub)
}

fn read(sub: &str) -> String {
    let path = fixture(sub);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()))
}

/// `(rule-id, line)` pairs declared by `expect(...)` markers. A marker
/// trailing code targets its own line; a standalone comment line
/// targets the next line.
fn expected_sites(text: &str) -> BTreeSet<(String, u32)> {
    let mut out = BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let Some(pos) = line.find("gdx-lint: expect(") else {
            continue;
        };
        let rest = &line[pos + "gdx-lint: expect(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let before_comment = &line[..line.find("//").unwrap_or(pos)];
        let target = if before_comment.trim().is_empty() {
            i as u32 + 2
        } else {
            i as u32 + 1
        };
        out.insert((rest[..close].to_owned(), target));
    }
    out
}

fn fired_sites(file: &str, text: &str) -> BTreeSet<(String, u32)> {
    let ctx = FileCtx::library("fixture");
    lint_source(file, text, &ctx)
        .diagnostics
        .into_iter()
        .map(|d| (d.rule.id().to_owned(), d.line))
        .collect()
}

const VIOLATION_FIXTURES: &[&str] = &[
    "violations/hash_iter.rs",
    "violations/wall_clock.rs",
    "violations/clock_inject.rs",
    "violations/thread_spawn.rs",
    "violations/panic_macro.rs",
    "violations/lock_unwrap.rs",
    "violations/slice_index.rs",
    "violations/unsafe_code.rs",
    "violations/allows.rs",
];

const CLEAN_FIXTURES: &[&str] = &[
    "clean/hash_iter.rs",
    "clean/wall_clock.rs",
    "clean/clock_inject.rs",
    "clean/thread_spawn.rs",
    "clean/panic_macro.rs",
    "clean/lock_unwrap.rs",
    "clean/slice_index.rs",
];

#[test]
fn violations_fire_exactly_where_annotated() {
    for sub in VIOLATION_FIXTURES {
        let text = read(sub);
        let expected = expected_sites(&text);
        assert!(
            !expected.is_empty(),
            "{sub}: fixture carries no expect() markers"
        );
        let fired = fired_sites(sub, &text);
        assert_eq!(fired, expected, "{sub}: fired (left) != annotated (right)");
    }
}

#[test]
fn clean_twins_are_silent() {
    for sub in CLEAN_FIXTURES {
        let text = read(sub);
        let fired = fired_sites(sub, &text);
        assert!(fired.is_empty(), "{sub}: unexpected findings: {fired:?}");
    }
}

#[test]
fn unsafe_sites_are_inventoried_with_annotation_state() {
    let text = read("violations/unsafe_code.rs");
    let out = lint_source(
        "violations/unsafe_code.rs",
        &text,
        &FileCtx::library("fixture"),
    );
    assert_eq!(out.unsafe_sites.len(), 2, "both blocks inventoried");
    let annotated: Vec<bool> = out.unsafe_sites.iter().map(|u| u.annotated).collect();
    assert_eq!(annotated.iter().filter(|&&a| a).count(), 1);
}

#[test]
fn used_allow_suppresses_and_is_recorded() {
    let text = read("violations/hash_iter.rs");
    let out = lint_source(
        "violations/hash_iter.rs",
        &text,
        &FileCtx::library("fixture"),
    );
    let allows: Vec<_> = out
        .allows
        .iter()
        .filter(|a| a.rule == Rule::HashIter)
        .collect();
    assert_eq!(allows.len(), 1);
    assert!(
        allows[0].used,
        "the allowed for-loop must consume the allow"
    );
    assert!(allows[0].reason.contains("commutative"));
}

/// The `net_module` carve-out admits exactly the server's process
/// edge: under the net.rs context the thread/clock fixtures go silent,
/// while any other gdx-server file keeps the full library contract.
#[test]
fn net_module_carve_out_is_per_file_not_per_crate() {
    let mut net = FileCtx::library("gdx-server");
    net.net_module = true;
    for sub in [
        "violations/thread_spawn.rs",
        "violations/clock_inject.rs",
        "violations/wall_clock.rs",
    ] {
        let text = read(sub);
        let fired = lint_source(sub, &text, &net).diagnostics;
        assert!(fired.is_empty(), "{sub} under net.rs ctx: {fired:?}");
        let plain = FileCtx::library("gdx-server");
        let fired = lint_source(sub, &text, &plain).diagnostics;
        assert!(
            !fired.is_empty(),
            "{sub}: the rest of gdx-server must stay covered"
        );
    }
    // Panic hygiene is not part of the carve-out.
    let text = read("violations/panic_macro.rs");
    let fired = lint_source("violations/panic_macro.rs", &text, &net).diagnostics;
    assert!(!fired.is_empty(), "panic-macro still applies in net.rs");
}

#[test]
fn bad_root_is_missing_both_attributes() {
    let text = read("roots/bad_root.rs");
    let mut ctx = FileCtx::library("fixture");
    ctx.root = Some(gdx_lint::RootPolicy {
        require_preamble: true,
    });
    let fired = lint_source("roots/bad_root.rs", &text, &ctx)
        .diagnostics
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect::<BTreeSet<_>>();
    let expected: BTreeSet<(Rule, u32)> = [(Rule::ForbidUnsafe, 1), (Rule::DenyPreamble, 1)].into();
    assert_eq!(fired, expected);
}

#[test]
fn good_root_is_silent() {
    let text = read("roots/good_root.rs");
    let mut ctx = FileCtx::library("fixture");
    ctx.root = Some(gdx_lint::RootPolicy {
        require_preamble: true,
    });
    let out = lint_source("roots/good_root.rs", &text, &ctx);
    assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
}

#[test]
fn external_deps_without_shims_fire() {
    let text = read("manifests/external.toml");
    let diags = gdx_lint::manifest::lint_manifest("manifests/external.toml", &text, &|_| false);
    let names: Vec<&str> = diags
        .iter()
        .map(|d| {
            assert_eq!(d.rule, Rule::DepShim);
            d.message.split('`').nth(1).unwrap_or("")
        })
        .collect();
    assert_eq!(names, ["serde", "libc"], "{diags:?}");
}

#[test]
fn shimmed_and_workspace_deps_are_silent() {
    let text = read("manifests/shimmed.toml");
    let diags =
        gdx_lint::manifest::lint_manifest("manifests/shimmed.toml", &text, &|n| n == "criterion");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn slice_index_is_the_only_warn_tier_rule() {
    for &r in ALL_RULES {
        assert_eq!(
            r.severity() == Severity::Warn,
            r == Rule::SliceIndex,
            "{r:?}"
        );
    }
}

/// The corpus must exercise every rule in the catalog: token-anchored
/// rules via expect markers, file/manifest-anchored rules via the
/// dedicated tests above.
#[test]
fn fixture_corpus_covers_the_whole_catalog() {
    let mut covered: BTreeSet<String> = VIOLATION_FIXTURES
        .iter()
        .flat_map(|sub| expected_sites(&read(sub)))
        .map(|(rule, _)| rule)
        .collect();
    // Anchored to line 1 / manifest lines — asserted by dedicated tests.
    for extra in ["forbid-unsafe", "deny-preamble", "dep-shim"] {
        covered.insert(extra.to_owned());
    }
    let catalog: BTreeSet<String> = ALL_RULES.iter().map(|r| r.id().to_owned()).collect();
    assert_eq!(covered, catalog, "fixture corpus out of sync with catalog");
}
