//! # gdx-datagen
//!
//! Workload generators for the reproduction experiments (DESIGN.md §2's
//! substitution: the paper reports no datasets, so scaled versions of its
//! own running example plus standard random families are used).
//!
//! * [`random_3cnf`] — uniform random 3-CNF (distinct variables per
//!   clause); swept across the clause/variable ratio this exhibits the
//!   classic SAT phase transition around ≈ 4.26, which experiment B1 uses
//!   to stress Theorem 4.1's reduction;
//! * [`flights_hotels`] — scaled Flight/Hotel instances for the
//!   Example 2.2 setting (experiment B3: chase scaling), with a
//!   hotel-sharing knob driving egd merge counts;
//! * [`random_graph`] — uniform random edge-labeled graphs (experiment
//!   B4: NRE evaluation scaling);
//! * [`scenario`] — random *textual* exchange scenarios (settings,
//!   instances, queries, work graphs) for the `gdx-sim` differential
//!   fuzzing harness.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]

pub mod scenario;

use gdx_graph::Graph;
use gdx_mapping::TargetTgd;
use gdx_query::Cnre;
use gdx_relational::{Instance, Schema};
use gdx_sat::{Cnf, Lit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for reproducible experiments.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A uniform random 3-CNF with `num_vars` variables and `num_clauses`
/// clauses; each clause picks 3 *distinct* variables and independent
/// polarities.
pub fn random_3cnf(num_vars: u32, num_clauses: usize, rng: &mut StdRng) -> Cnf {
    assert!(num_vars >= 3, "3-CNF needs at least 3 variables");
    let mut cnf = Cnf::new(num_vars);
    while cnf.clauses.len() < num_clauses {
        let mut vars = [0u32; 3];
        vars[0] = rng.gen_range(0..num_vars);
        loop {
            vars[1] = rng.gen_range(0..num_vars);
            if vars[1] != vars[0] {
                break;
            }
        }
        loop {
            vars[2] = rng.gen_range(0..num_vars);
            if vars[2] != vars[0] && vars[2] != vars[1] {
                break;
            }
        }
        let clause: Vec<Lit> = vars
            .iter()
            .map(|&v| {
                if rng.gen_bool(0.5) {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                }
            })
            .collect();
        cnf.add_clause(clause);
    }
    cnf
}

/// Parameters of the Flight/Hotel scenario.
#[derive(Debug, Clone, Copy)]
pub struct FlightsHotelsParams {
    /// Number of flights.
    pub flights: usize,
    /// Number of distinct cities to draw endpoints from.
    pub cities: usize,
    /// Number of distinct hotels.
    pub hotels: usize,
    /// Hotel stays recorded per flight.
    pub stays_per_flight: usize,
}

impl Default for FlightsHotelsParams {
    fn default() -> FlightsHotelsParams {
        FlightsHotelsParams {
            flights: 100,
            cities: 20,
            hotels: 30,
            stays_per_flight: 2,
        }
    }
}

/// Generates a Flight/Hotel instance compatible with
/// `Setting::example_2_2_egd()` / `example_2_2_sameas()` /
/// `example_3_1()`. Fewer hotels relative to flights ⇒ more hotel sharing
/// ⇒ more egd merges in the adapted chase.
// Static schema and fixed-arity inserts: the `expect`s can only trip
// on a generator bug.
#[allow(clippy::expect_used)]
pub fn flights_hotels(p: FlightsHotelsParams, rng: &mut StdRng) -> Instance {
    let schema = Schema::from_relations([("Flight", 3), ("Hotel", 2)]).expect("static schema");
    let mut inst = Instance::new(schema);
    for f in 0..p.flights {
        let fid = format!("fl{f}");
        let src = format!("city{}", rng.gen_range(0..p.cities));
        let mut dst = format!("city{}", rng.gen_range(0..p.cities));
        if dst == src {
            dst = format!("city{}", (rng.gen_range(0..p.cities) + 1) % p.cities.max(1));
        }
        inst.insert_strs("Flight", &[&fid, &src, &dst])
            .expect("arity 3");
        for _ in 0..p.stays_per_flight {
            let hotel = format!("hotel{}", rng.gen_range(0..p.hotels.max(1)));
            inst.insert_strs("Hotel", &[&fid, &hotel]).expect("arity 2");
        }
    }
    inst
}

/// A depth-`k` chain of target tgds over fresh labels `l0 … lk`: every
/// `h`-edge demands an `l0`-successor, and every `l{i}`-edge an
/// `l{i+1}`-successor (`i < k-1`). Chasing a Flight/Hotel graph with this
/// set takes `k` rounds of cascading firings — the workload the
/// `chase_scaling` bench uses to compare the naive round-robin chase
/// against the semi-naive worklist engine.
// The tgd bodies/heads are static templates that parse by construction.
#[allow(clippy::expect_used)]
pub fn chain_target_tgds(depth: usize) -> Vec<TargetTgd> {
    assert!(depth >= 1);
    let tgd = |body: &str, head: &str| TargetTgd {
        body: Cnre::parse(body).expect("static body"),
        existential: vec![gdx_common::Symbol::new("z")],
        head: Cnre::parse(head).expect("static head"),
    };
    let mut out = vec![tgd("(x, h, y)", "(y, l0, z)")];
    for i in 0..depth.saturating_sub(1) {
        out.push(tgd(
            &format!("(x, l{i}, y)"),
            &format!("(y, l{}, z)", i + 1),
        ));
    }
    out
}

/// A uniform random edge-labeled graph over constant nodes `n0 … n{nodes-1}`
/// and labels `l0 … l{labels-1}`.
pub fn random_graph(nodes: usize, edges: usize, labels: usize, rng: &mut StdRng) -> Graph {
    assert!(nodes > 0 && labels > 0);
    let mut g = Graph::with_capacity(nodes, edges);
    let ids: Vec<_> = (0..nodes).map(|i| g.add_const(&format!("n{i}"))).collect();
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < edges && attempts < edges * 20 {
        attempts += 1;
        let s = ids[rng.gen_range(0..nodes)];
        let d = ids[rng.gen_range(0..nodes)];
        let l = format!("l{}", rng.gen_range(0..labels));
        if g.add_edge_labelled(s, &l, d) {
            added += 1;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdx_sat::brute_force;

    #[test]
    fn cnf_shape() {
        let mut r = rng(7);
        let f = random_3cnf(10, 42, &mut r);
        assert_eq!(f.num_vars, 10);
        assert_eq!(f.clauses.len(), 42);
        assert!(f.is_3cnf());
        for c in &f.clauses {
            assert_eq!(c.len(), 3, "distinct variables per clause");
        }
    }

    #[test]
    fn cnf_is_deterministic_per_seed() {
        let a = random_3cnf(8, 20, &mut rng(1));
        let b = random_3cnf(8, 20, &mut rng(1));
        let c = random_3cnf(8, 20, &mut rng(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn phase_transition_direction() {
        // Under-constrained formulas are mostly SAT, over-constrained
        // mostly UNSAT; check the trend with the brute-force oracle.
        let n = 12u32;
        let sat_low: usize = (0..10)
            .filter(|&s| brute_force(&random_3cnf(n, (n as usize) * 2, &mut rng(s))).is_some())
            .count();
        let sat_high: usize = (0..10)
            .filter(|&s| {
                brute_force(&random_3cnf(n, (n as usize) * 7, &mut rng(100 + s))).is_some()
            })
            .count();
        assert!(sat_low >= 8, "ratio 2.0 should be mostly satisfiable");
        assert!(sat_high <= 2, "ratio 7.0 should be mostly unsatisfiable");
    }

    #[test]
    fn flights_hotels_valid_instance() {
        let p = FlightsHotelsParams {
            flights: 50,
            cities: 10,
            hotels: 5,
            stays_per_flight: 2,
        };
        let inst = flights_hotels(p, &mut rng(3));
        assert_eq!(inst.relation_str("Flight").unwrap().len(), 50);
        let stays = inst.relation_str("Hotel").unwrap().len();
        assert!(stays <= 100 && stays > 50, "dedup may drop a few: {stays}");
        // Chases cleanly under the paper's setting.
        let out = gdx_chase::chase_st(
            &inst,
            &gdx_mapping::Setting::example_2_2_egd(),
            gdx_chase::StChaseVariant::Oblivious,
        )
        .unwrap();
        assert!(out.pattern.node_count() > 0);
    }

    #[test]
    fn chain_tgds_chase_in_depth_rounds() {
        let tgds = chain_target_tgds(3);
        assert_eq!(tgds.len(), 3);
        let mut g = Graph::new();
        g.add_edge_consts("n", "h", "hx");
        let out =
            gdx_chase::chase_target_tgds(&g, &tgds, gdx_chase::TgdChaseConfig::default()).unwrap();
        // h → l0 → l1 → l2: one firing per chain level.
        assert_eq!(out.steps, 3);
        assert_eq!(out.graph.edge_count(), 4);
    }

    #[test]
    fn random_graph_shape() {
        let g = random_graph(30, 90, 3, &mut rng(9));
        assert_eq!(g.node_count(), 30);
        assert!(g.edge_count() > 80, "near-target edge count");
        assert!(g.labels().count() <= 3);
    }
}
