//! Random exchange scenarios for the simulation harness (`gdx-sim`).
//!
//! Everything here generates *text* — settings in the mapping DSL,
//! instances as fact lists, graphs as edge lists, queries in NRE/CNRE
//! syntax. Text is the contract the harness wants: a scenario embedded in
//! a repro file round-trips through the same public parsers an end user
//! exercises, so every generated scenario doubles as a parser fuzz case,
//! and a shrunk repro stays human-readable and human-editable.
//!
//! The generated target tgds are **stratified** (rule `i`'s body reads
//! only the base alphabet and earlier heads `t0 … t{i-1}`, its head
//! writes `t{i}` alone), matching the confluence contract of the
//! semi-naive/naive chase equivalence (see
//! `crates/chase/tests/seminaive_equiv.rs`): on these sets both chase
//! modes terminate with isomorphic results, which is exactly what the
//! differential oracles compare. The [`ScenarioParams::cyclic_tgd`] knob
//! deliberately breaks termination (a self-feeding existential rule) for
//! the fault-injection sweeps at the chase-termination boundary.

use rand::rngs::StdRng;
use rand::Rng;

/// Knobs of [`random_setting_text`]. The defaults describe the broad
/// differential-oracle family: every constraint kind allowed, stars
/// allowed in st-tgd heads (so both the exact and the bounded fragment
/// arise), no termination hazard.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioParams {
    /// Number of source-to-target tgds (at least 1).
    pub st_tgds: usize,
    /// Number of target constraints (egd/sameas/tgd mix).
    pub constraints: usize,
    /// Allow `A.A*` heads in st-tgds (takes the setting outside the
    /// exact fragment and forces bounded candidate search).
    pub star_heads: bool,
    /// Allow egds among the target constraints.
    pub egds: bool,
    /// Allow sameAs constraints among the target constraints.
    pub sameas: bool,
    /// Allow (stratified) target tgds among the target constraints.
    pub target_tgds: bool,
    /// Append a *non-terminating* self-feeding target tgd — the
    /// chase-termination-boundary scenario for fault injection.
    pub cyclic_tgd: bool,
}

impl Default for ScenarioParams {
    fn default() -> ScenarioParams {
        ScenarioParams {
            st_tgds: 2,
            constraints: 2,
            star_heads: true,
            egds: true,
            sameas: true,
            target_tgds: true,
            cyclic_tgd: false,
        }
    }
}

/// Base target labels every scenario draws from.
const BASE_LABELS: [&str; 3] = ["f", "g", "h"];

/// Maximum stratified target-tgd rules (head labels `t0 … t{N-1}`).
const MAX_T_RULES: usize = 3;

fn pick<'a>(rng: &mut StdRng, pool: &[&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

/// A random setting in DSL text. Always parses and validates: the source
/// schema is fixed (`R/2; S/3`), the target alphabet declares the base
/// labels plus every tgd head label, and all constraint bodies stay
/// inside that alphabet.
pub fn random_setting_text(p: &ScenarioParams, rng: &mut StdRng) -> String {
    let mut out = String::from("source { R/2; S/3 }\n");
    out.push_str("target { f; g; h; t0; t1; t2 }\n");

    for _ in 0..p.st_tgds.max(1) {
        out.push_str(&random_st_tgd(p, rng));
    }

    // Which constraint kinds are on the table?
    let mut kinds: Vec<u8> = Vec::new();
    if p.egds {
        kinds.push(0);
    }
    if p.sameas {
        kinds.push(1);
    }
    if p.target_tgds {
        kinds.push(2);
    }
    let mut t_rules = 0usize;
    if !kinds.is_empty() {
        for _ in 0..p.constraints {
            match kinds[rng.gen_range(0..kinds.len())] {
                0 => out.push_str(&random_egd(rng)),
                1 => out.push_str(&random_sameas(rng)),
                _ if t_rules < MAX_T_RULES => {
                    out.push_str(&random_target_tgd(t_rules, rng));
                    t_rules += 1;
                }
                _ => out.push_str(&random_egd(rng)),
            }
        }
    }
    if p.cyclic_tgd {
        // A feeder so the cycle has fuel, then the self-feeding rule: the
        // restricted chase on any graph with an f-edge never terminates.
        out.push_str("tgd (x, f, y) -> exists z : (y, t0, z);\n");
        out.push_str("tgd (x, t0, y) -> exists z : (y, t0, z);\n");
    }
    out
}

/// One random source-to-target tgd line.
fn random_st_tgd(p: &ScenarioParams, rng: &mut StdRng) -> String {
    // (body CQ, variables it binds)
    let bodies: [(&str, &[&str]); 4] = [
        ("R(x, y)", &["x", "y"]),
        ("S(x, y, z)", &["x", "y", "z"]),
        ("R(x, y), R(y, z)", &["x", "y", "z"]),
        ("R(x, y), S(y, z, w)", &["x", "y", "z", "w"]),
    ];
    let (body, vars) = bodies[rng.gen_range(0..bodies.len())];
    let use_exists = rng.gen_bool(0.5);
    let n_atoms = 1 + rng.gen_range(0..2usize);
    let mut atoms = Vec::new();
    for i in 0..n_atoms {
        // The existential (when present) appears in every atom so the
        // head is connected through it: first as target, then as source.
        let src = if use_exists && i > 0 {
            "e0"
        } else {
            pick(rng, vars)
        };
        let dst = if use_exists && i == 0 {
            "e0"
        } else {
            pick(rng, vars)
        };
        atoms.push(format!("({src}, {}, {dst})", random_head_nre(p, rng)));
    }
    let head = atoms.join(", ");
    if use_exists {
        format!("sttgd {body} -> exists e0 : {head};\n")
    } else {
        format!("sttgd {body} -> {head};\n")
    }
}

/// A head NRE over the base labels: single label, concat, union, or (when
/// allowed) the paper's `A.A*` plus-shape.
fn random_head_nre(p: &ScenarioParams, rng: &mut StdRng) -> String {
    let a = pick(rng, &BASE_LABELS);
    let b = pick(rng, &BASE_LABELS);
    match rng.gen_range(0..if p.star_heads { 4u32 } else { 3u32 }) {
        0 => a.to_owned(),
        1 => format!("{a}.{b}"),
        2 => format!("{a}+{b}"),
        _ => format!("{a}.{a}*"),
    }
}

fn random_egd(rng: &mut StdRng) -> String {
    let a = pick(rng, &BASE_LABELS);
    let b = pick(rng, &BASE_LABELS);
    match rng.gen_range(0..3u32) {
        // Functionality of a.
        0 => format!("egd (x, {a}, y), (x, {a}, z) -> y = z;\n"),
        // Inverse functionality (keys).
        1 => format!("egd (x, {a}, y), (z, {a}, y) -> x = z;\n"),
        // Cross-label agreement.
        _ => format!("egd (x, {a}, y), (x, {b}, z) -> y = z;\n"),
    }
}

fn random_sameas(rng: &mut StdRng) -> String {
    let a = pick(rng, &BASE_LABELS);
    match rng.gen_range(0..2u32) {
        0 => format!("sameas (x, {a}, y), (z, {a}, y) -> (x, z);\n"),
        _ => format!("sameas (x, {a}, y), (x, {a}, z) -> (y, z);\n"),
    }
}

/// Stratified rule `i`: body over base labels plus `t0 … t{i-1}`, head
/// writes `t{i}` only. Every shape's demand is a function of the match
/// frontier alone (the seminaive_equiv confluence contract).
fn random_target_tgd(i: usize, rng: &mut StdRng) -> String {
    let mut pool: Vec<String> = BASE_LABELS.iter().map(|s| (*s).to_owned()).collect();
    pool.extend((0..i).map(|j| format!("t{j}")));
    let refs: Vec<&str> = pool.iter().map(String::as_str).collect();
    let a = pick(rng, &refs);
    let b = pick(rng, &refs);
    match rng.gen_range(0..4u32) {
        0 => format!("tgd (x, {a}, y) -> exists z : (y, t{i}, z);\n"),
        1 => format!("tgd (x, {a}, y) -> (y, t{i}, x);\n"),
        2 => format!("tgd (x, {a}.{b}, y) -> (x, t{i}, y);\n"),
        _ => format!("tgd (x, {a}, y) -> exists z : (y, t{i}, z), (z, t{i}, x);\n"),
    }
}

/// A random instance over the fixed `R/2; S/3` schema, as fact text.
/// Constants come from a small shared pool (`c0 …`), so egd merges and
/// clashes actually arise.
pub fn random_instance_text(rng: &mut StdRng) -> String {
    let consts = rng.gen_range(3..6usize);
    let facts = rng.gen_range(2..7usize);
    let c = |rng: &mut StdRng| format!("c{}", rng.gen_range(0..consts));
    let mut out = String::new();
    for _ in 0..facts {
        if rng.gen_bool(0.6) {
            let (x, y) = (c(rng), c(rng));
            out.push_str(&format!("R({x}, {y});\n"));
        } else {
            let (x, y, z) = (c(rng), c(rng), c(rng));
            out.push_str(&format!("S({x}, {y}, {z});\n"));
        }
    }
    out
}

/// A random query NRE (as text) over the scenario's target labels,
/// including inverses, stars, unions and nested tests. `budget` bounds
/// the AST size; the text is the canonical `Display` form, so it parses
/// back to the same tree.
pub fn random_nre_text(budget: usize, rng: &mut StdRng) -> String {
    random_nre(budget, rng).to_string()
}

fn random_nre(budget: usize, rng: &mut StdRng) -> gdx_nre::Nre {
    use gdx_nre::Nre;
    let label = |rng: &mut StdRng| pick(rng, &["f", "g", "h", "t0"]).to_owned();
    if budget <= 1 {
        let a = label(rng);
        return if rng.gen_bool(0.25) {
            Nre::inverse(&a)
        } else {
            Nre::label(&a)
        };
    }
    match rng.gen_range(0..6u32) {
        0 => random_nre(1, rng),
        1 => random_nre(budget / 2, rng).concat(random_nre(budget / 2, rng)),
        2 => random_nre(budget / 2, rng).union(random_nre(budget / 2, rng)),
        3 => random_nre(budget - 1, rng).star(),
        4 => random_nre(budget - 1, rng).test(),
        _ => random_nre(1, rng).plus(),
    }
}

/// A random Boolean CNRE query text `("ci", nre, "cj")` probing two pool
/// constants.
pub fn random_boolean_query_text(rng: &mut StdRng) -> String {
    let c1 = rng.gen_range(0..5usize);
    let c2 = rng.gen_range(0..5usize);
    format!("(\"c{c1}\", {}, \"c{c2}\")", random_nre_text(4, rng))
}

/// A random open CNRE query text over variables `x`/`y` (1–2 atoms).
pub fn random_open_query_text(rng: &mut StdRng) -> String {
    if rng.gen_bool(0.7) {
        format!("(x, {}, y)", random_nre_text(4, rng))
    } else {
        format!(
            "(x, {}, y), (y, {}, z)",
            random_nre_text(3, rng),
            random_nre_text(2, rng)
        )
    }
}

/// A random concrete target graph (edge-list text) over the scenario's
/// constants and base labels — the simulation's mutable working graph.
pub fn random_work_graph_text(rng: &mut StdRng) -> String {
    let nodes = rng.gen_range(2..5usize);
    let edges = rng.gen_range(1..6usize);
    let mut parts = Vec::with_capacity(edges);
    for _ in 0..edges {
        let s = rng.gen_range(0..nodes);
        let d = rng.gen_range(0..nodes);
        let l = pick(rng, &BASE_LABELS);
        parts.push(format!("(c{s}, {l}, c{d});"));
    }
    let mut out = parts.join(" ");
    out.push('\n');
    out
}

/// A random edge over the pool constants/labels, for incremental
/// insertion ops: `(src, label, dst)` as plain strings.
pub fn random_edge(rng: &mut StdRng) -> (String, String, String) {
    (
        format!("c{}", rng.gen_range(0..5usize)),
        pick(rng, &BASE_LABELS).to_owned(),
        format!("c{}", rng.gen_range(0..5usize)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn settings_parse_and_validate_across_seeds() {
        for seed in 0..200u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = ScenarioParams {
                cyclic_tgd: seed % 17 == 0,
                ..ScenarioParams::default()
            };
            let text = random_setting_text(&p, &mut rng);
            let setting = gdx_mapping::dsl::parse_setting(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
            setting
                .validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
        }
    }

    #[test]
    fn instances_parse_against_generated_schema() {
        for seed in 0..100u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let setting = gdx_mapping::dsl::parse_setting(&random_setting_text(
                &ScenarioParams::default(),
                &mut rng,
            ))
            .unwrap();
            let inst_text = random_instance_text(&mut rng);
            gdx_relational::Instance::parse(setting.source.clone(), &inst_text)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{inst_text}"));
        }
    }

    #[test]
    fn queries_and_graphs_parse() {
        for seed in 0..200u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let nre = random_nre_text(5, &mut rng);
            gdx_nre::parse::parse_nre(&nre).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{nre}"));
            let bq = random_boolean_query_text(&mut rng);
            gdx_query::Cnre::parse(&bq).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{bq}"));
            let oq = random_open_query_text(&mut rng);
            gdx_query::Cnre::parse(&oq).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{oq}"));
            let g = random_work_graph_text(&mut rng);
            gdx_graph::Graph::parse(&g).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{g}"));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = ScenarioParams::default();
        let a = random_setting_text(&p, &mut StdRng::seed_from_u64(9));
        let b = random_setting_text(&p, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
