//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny API subset it actually uses: [`StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], plus [`Rng::gen_range`] / [`Rng::gen_bool`].
//! The generator is SplitMix64 — deterministic, fast, and more than good
//! enough for workload generation (it is *not* cryptographic, and it does
//! not reproduce upstream rand's streams).

pub mod rngs {
    /// A deterministic 64-bit generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_state(state: u64) -> StdRng {
            StdRng { state }
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub use rngs::StdRng;

/// Seeding, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // One scramble round so that small seeds diverge immediately.
        let mut r = StdRng::from_state(seed ^ 0x5DEE_CE66_D016_3C4F);
        r.next_u64();
        r
    }
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`; `hi > lo` required.
    fn sample_range(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                assert!(hi > lo, "gen_range requires a non-empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Modulo bias is irrelevant at workload-generation scale.
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i32, i64, isize);

/// The API subset of `rand::Rng` this workspace uses.
pub trait Rng {
    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T;

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0usize..5);
            assert!(y < 5);
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
