//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the API subset its benches use: [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function` / `bench_with_input` with
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros (benches run with
//! `harness = false`).
//!
//! Statistics are deliberately simple: each benchmark runs a short
//! warm-up, then `sample_size` timed samples; the median, min, and max
//! per-iteration times are printed. There are no plots, baselines, or
//! outlier classification.

use std::hint;
use std::time::{Duration, Instant};

/// Re-exported opaque-value helper (identical contract to upstream).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Id carrying only the parameter (group name supplies the rest).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `body` repeatedly: warm-up, then timed samples.
    pub fn iter<T>(&mut self, mut body: impl FnMut() -> T) {
        // Warm-up: run until ~20ms have elapsed (at least once).
        let warm = Instant::now();
        loop {
            black_box(body());
            if warm.elapsed() > Duration::from_millis(20) {
                break;
            }
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(body());
            self.samples.push(t.elapsed());
        }
    }

    fn report(&mut self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = self.samples[self.samples.len() - 1];
        println!(
            "{label:<40} median {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
            median,
            min,
            max,
            self.samples.len()
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark without an explicit input.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&format!("{}/{id}", self.name));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(&format!("{}/{id}", self.name));
        self
    }

    /// Ends the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Collects bench functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_function("add", |b| b.iter(|| black_box(2u64) + 2));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
