//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the API subset its property tests use: [`strategy::Strategy`] with
//! `prop_map` / `prop_recursive` / `boxed`, range / tuple / [`Just`] /
//! string-regex strategies, [`collection::vec`], `prop_oneof!`,
//! `proptest!`, `prop_assert!`, and `prop_assert_eq!`.
//!
//! Differences from upstream, by design:
//!
//! * **no shrinking** — a failing case panics with the generated inputs'
//!   case number; re-running is deterministic, so the case reproduces;
//! * **deterministic seeding** — every test function starts from a fixed
//!   seed (override with `PROPTEST_SEED=<u64>`), so CI runs are stable;
//! * string strategies support exactly the `[class]{m,n}` regex shape
//!   (concatenations of character classes and literals).
//!
//! [`Just`]: strategy::Just

pub mod rng {
    //! Deterministic SplitMix64 generator behind every strategy.

    /// Test-case RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator with the given seed.
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The strategy combinators.

    use crate::rng::TestRng;
    use std::sync::Arc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Applies `f` to every generated value.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, f }
        }

        /// Type-erases the strategy behind an `Arc`.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Builds a recursive strategy: `self` is the leaf case, `branch`
        /// wraps an inner strategy into the recursive cases. `depth`
        /// bounds the recursion; the size-tuning parameters of upstream
        /// proptest are accepted and ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                // Each level flips between bottoming out and recursing, so
                // expected sizes stay small while full depth stays reachable.
                strat = Union::new(vec![leaf.clone(), branch(strat).boxed()]).boxed();
            }
            strat
        }
    }

    /// `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between strategies (the engine behind `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union of the given alternatives (non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.end > self.start, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(hi >= lo, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width range: any value works.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// String strategies from `&'static str` regex patterns: a
    /// concatenation of `[class]{m,n}` units, classes holding literal
    /// chars, `a-z` ranges, and `\n`/`\t`/`\\`/`\]`/`\-` escapes.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let units = parse_pattern(self)
                .unwrap_or_else(|e| panic!("unsupported regex strategy {self:?}: {e}"));
            let mut out = String::new();
            for unit in &units {
                let n = unit.min + rng.below((unit.max - unit.min + 1) as u64) as usize;
                for _ in 0..n {
                    let i = rng.below(unit.chars.len() as u64) as usize;
                    out.push(unit.chars[i]);
                }
            }
            out
        }
    }

    struct PatternUnit {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse_pattern(pattern: &str) -> Result<Vec<PatternUnit>, String> {
        let mut units = Vec::new();
        let mut it = pattern.chars().peekable();
        while let Some(c) = it.next() {
            let chars = match c {
                '[' => {
                    let mut class = Vec::new();
                    loop {
                        let c = it.next().ok_or("unterminated character class")?;
                        match c {
                            ']' => break,
                            '\\' => class.push(unescape(it.next().ok_or("dangling escape")?)?),
                            _ => {
                                if it.peek() == Some(&'-') {
                                    it.next();
                                    let hi = it.next().ok_or("unterminated char range")?;
                                    let hi = if hi == '\\' {
                                        unescape(it.next().ok_or("dangling escape")?)?
                                    } else {
                                        hi
                                    };
                                    if hi == ']' {
                                        // Trailing `-` is a literal.
                                        class.push(c);
                                        class.push('-');
                                        break;
                                    }
                                    class.extend((c..=hi).collect::<Vec<char>>());
                                } else {
                                    class.push(c);
                                }
                            }
                        }
                    }
                    if class.is_empty() {
                        return Err("empty character class".to_owned());
                    }
                    class
                }
                '\\' => vec![unescape(it.next().ok_or("dangling escape")?)?],
                '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' => {
                    return Err(format!("unsupported regex construct {c:?}"))
                }
                _ => vec![c],
            };
            let (min, max) = if it.peek() == Some(&'{') {
                it.next();
                let mut spec = String::new();
                for c in it.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                let parts: Vec<&str> = spec.split(',').collect();
                let parse = |s: &str| s.trim().parse::<usize>().map_err(|e| e.to_string());
                match parts.as_slice() {
                    [exact] => {
                        let n = parse(exact)?;
                        (n, n)
                    }
                    [lo, hi] => (parse(lo)?, parse(hi)?),
                    _ => return Err(format!("bad repetition spec {{{spec}}}")),
                }
            } else {
                (1, 1)
            };
            if max < min {
                return Err(format!("repetition bounds inverted: {min}..{max}"));
            }
            units.push(PatternUnit { chars, min, max });
        }
        Ok(units)
    }

    fn unescape(c: char) -> Result<char, String> {
        Ok(match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '\\' | ']' | '[' | '-' | '{' | '}' | '(' | ')' | '*' | '+' | '?' | '|' | '.' | '"' => c,
            _ => return Err(format!("unsupported escape \\{c}")),
        })
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for the types the workspace draws.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;

        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Uniform `bool` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 0
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;

        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = std::ops::RangeInclusive<$t>;

                fn arbitrary() -> Self::Strategy {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! `Vec` strategies.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Inclusive element-count bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.end > r.start, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let n = self.size.min + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The case loop.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Generates and checks cases; panics on the first failure (there is
    /// no shrinking — generation is deterministic, so the case number
    /// reproduces the input).
    pub struct TestRunner {
        config: Config,
        rng: TestRng,
    }

    impl TestRunner {
        /// A runner seeded deterministically (override via
        /// `PROPTEST_SEED=<u64>`).
        pub fn new(config: Config) -> TestRunner {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x0C0F_FEE0_0BAD_F00D);
            TestRunner {
                config,
                rng: TestRng::new(seed),
            }
        }

        /// Runs the property over `config.cases` generated values.
        pub fn run<S, F>(&mut self, strategy: S, mut test: F)
        where
            S: Strategy,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            for case in 0..self.config.cases {
                let value = strategy.generate(&mut self.rng);
                if let Err(e) = test(value) {
                    panic!("proptest: case {case}/{} failed: {e}", self.config.cases);
                }
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares property tests: an optional
/// `#![proptest_config(ProptestConfig::with_cases(n))]` header, then
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[allow(unreachable_code)]
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                let strategy = ($($strat,)+);
                runner.run(strategy, |($($pat,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// One-strategy choice: `prop_oneof![s1, s2, ...]` picks an arm uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::rng::TestRng::new(1);
        let s = crate::collection::vec((0u32..5, 0u8..2), 0..10);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 10);
            for (a, b) in v {
                assert!(a < 5 && b < 2);
            }
        }
    }

    #[test]
    fn string_regex_subset() {
        let mut rng = crate::rng::TestRng::new(2);
        for _ in 0..100 {
            let s = "[a-c]{1,4}".generate(&mut rng);
            assert!((1..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let t = "[ -~\n]{0,60}".generate(&mut rng);
            assert!(t.len() <= 60);
            assert!(t.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::rng::TestRng::new(3);
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0u32..10, b in any::<bool>()) {
            prop_assert!(x < 10);
            if b {
                return Ok(());
            }
            prop_assert_eq!(x, x, "reflexivity with {}", b);
        }
    }
}
