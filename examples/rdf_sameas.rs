//! The RDF-inspired sameAs relaxation (Section 4.2): same mapping as the
//! quickstart, but the "hotel in exactly one city" constraint adds
//! `sameAs` edges instead of merging nodes. Existence becomes trivial;
//! certain answers change. One session per setting answers both queries.
//!
//! ```text
//! cargo run --example rdf_sameas
//! ```

use gdx::chase::saturate_same_as;
use gdx::exchange::exists::construct_solution_no_egds;
use gdx::prelude::*;

fn main() -> Result<()> {
    let egd_setting = Setting::example_2_2_egd();
    let sameas_setting = Setting::example_2_2_sameas();
    let instance = Instance::example_2_2();

    // Solutions under Ω′ always exist and are built in polynomial time:
    // instantiate the chased pattern, then saturate sameAs edges.
    let g = construct_solution_no_egds(&instance, &sameas_setting, &Options::default())?;
    println!("A solution under Ω′ (sameAs edges included):\n{g}");

    // Saturation is idempotent.
    let mut g2 = g.clone();
    let constraints: Vec<_> = sameas_setting.same_as_constraints().cloned().collect();
    assert_eq!(saturate_same_as(&mut g2, &constraints)?, 0);

    // The paper's query does not mention sameAs, so some certain answers
    // are lost relative to the egd setting (end of Example 2.2). One
    // session per setting; the prepared query is shared between them.
    let q = PreparedQuery::parse("(x1, f.f*.[h].f-.(f-)*, x2)")?;
    let mut egd_session = ExchangeSession::new(egd_setting, instance.clone());
    let mut sa_session = ExchangeSession::new(sameas_setting, instance);
    let (egd_answers, _) = egd_session.certain_answers(&q)?;
    let (sa_answers, _) = sa_session.certain_answers(&q)?;
    println!("cert under Ω  (egds):   {} answers", egd_answers.len());
    println!("cert under Ω′ (sameAs): {} answers", sa_answers.len());
    assert_eq!(egd_answers.len(), 4);
    assert_eq!(sa_answers.len(), 2);

    // A query that *does* exploit sameAs recovers the connection: cities
    // sharing a hotel, up to sameAs. Same session — the solution family
    // is already memoized, so this query costs evaluation only.
    let q_sa = PreparedQuery::parse("(x, h, z), (x, sameAs, y)")?;
    let (sa_aware, _) = sa_session.certain_answers(&q_sa)?;
    println!("sameAs-aware query certain answers: {}", sa_aware.len());
    Ok(())
}
