//! The RDF-inspired sameAs relaxation (Section 4.2): same mapping as the
//! quickstart, but the "hotel in exactly one city" constraint adds
//! `sameAs` edges instead of merging nodes. Existence becomes trivial;
//! certain answers change.
//!
//! ```text
//! cargo run --example rdf_sameas
//! ```

use gdx::chase::saturate_same_as;
use gdx::exchange::certain::certain_answers;
use gdx::exchange::exists::construct_solution_no_egds;
use gdx::prelude::*;
use gdx_common::Term;

fn main() -> Result<()> {
    let egd_setting = Setting::example_2_2_egd();
    let sameas_setting = Setting::example_2_2_sameas();
    let instance = Instance::example_2_2();

    // Solutions under Ω′ always exist and are built in polynomial time:
    // instantiate the chased pattern, then saturate sameAs edges.
    let g = construct_solution_no_egds(&instance, &sameas_setting, &SolverConfig::default())?;
    println!("A solution under Ω′ (sameAs edges included):\n{g}");

    // Saturation is idempotent.
    let mut g2 = g.clone();
    let constraints: Vec<_> = sameas_setting.same_as_constraints().cloned().collect();
    assert_eq!(saturate_same_as(&mut g2, &constraints)?, 0);

    // The paper's query does not mention sameAs, so some certain answers
    // are lost relative to the egd setting (end of Example 2.2).
    let q = Cnre::single(
        Term::var("x1"),
        gdx::nre::parse::parse_nre("f.f*.[h].f-.(f-)*")?,
        Term::var("x2"),
    );
    let cfg = SolverConfig::default();
    let (egd_answers, _) = certain_answers(&instance, &egd_setting, &q, &cfg)?;
    let (sa_answers, _) = certain_answers(&instance, &sameas_setting, &q, &cfg)?;
    println!("cert under Ω  (egds):   {} answers", egd_answers.len());
    println!("cert under Ω′ (sameAs): {} answers", sa_answers.len());
    assert_eq!(egd_answers.len(), 4);
    assert_eq!(sa_answers.len(), 2);

    // A query that *does* exploit sameAs recovers the connection: cities
    // sharing a hotel, up to sameAs.
    let q_sa = Cnre::parse("(x, h, z), (x, sameAs, y)")?;
    let (sa_aware, _) = certain_answers(&instance, &sameas_setting, &q_sa, &cfg)?;
    println!("sameAs-aware query certain answers: {}", sa_aware.len());
    Ok(())
}
