//! The Theorem 4.1 reduction in action: encode 3SAT instances as data
//! exchange settings and watch existence-of-solutions inherit the SAT
//! phase transition. Sessions drive the SAT-encoding backend (the
//! encoding is memoized per session).
//!
//! ```text
//! cargo run --release --example sat_frontier
//! ```

use gdx::datagen::{random_3cnf, rng};
use gdx::exchange::reduction::{Reduction, ReductionFlavor};
use gdx::prelude::*;
use gdx::sat::{Cnf, Lit};
use std::time::Instant;

fn main() -> Result<()> {
    // The paper's ρ0 = (x1 ∨ ¬x2 ∨ x3) ∧ (¬x1 ∨ x3 ∨ ¬x4).
    let mut rho0 = Cnf::new(4);
    rho0.add_clause(vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)]);
    rho0.add_clause(vec![Lit::neg(0), Lit::pos(2), Lit::neg(3)]);
    println!("ρ0 = {rho0}");

    let red = Reduction::from_cnf(&rho0, ReductionFlavor::Egd)?;
    println!("\nReduced setting Ω_ρ0:\n{}", red.setting);

    // Figure 4's solution encodes the valuation t,t,f,f.
    let fig4 = red.solution_from_valuation(&[true, true, false, false]);
    println!("Figure 4 solution:\n{fig4}");
    let mut session = ExchangeSession::new(red.setting.clone(), red.instance.clone());
    assert!(session.is_solution(&fig4)?);

    // The same session answers existence via the memoized SAT encoding:
    // a second call re-solves without re-encoding.
    assert!(session.solution_exists_sat()?.exists());
    assert!(session.solution_exists_sat()?.exists());

    // Decide existence across the clause/variable ratio sweep — the
    // solution-existence frontier is the SAT phase transition.
    println!("existence frontier (n = 20, SAT-encoding solver):");
    println!("{:>6} {:>10} {:>12}", "m/n", "exists", "time");
    for ratio in [1.0, 2.0, 3.0, 4.0, 4.3, 4.6, 5.0, 6.0] {
        let n = 20u32;
        let m = ((n as f64) * ratio).round() as usize;
        let mut exists_count = 0;
        let t = Instant::now();
        let runs = 5;
        for seed in 0..runs {
            let cnf = random_3cnf(n, m, &mut rng(seed + (ratio * 1000.0) as u64));
            let red = Reduction::from_cnf(&cnf, ReductionFlavor::Egd)?;
            let mut s = ExchangeSession::new(red.setting, red.instance);
            if s.solution_exists_sat()?.exists() {
                exists_count += 1;
            }
        }
        println!(
            "{:>6.1} {:>7}/{runs} {:>12?}",
            ratio,
            exists_count,
            t.elapsed() / runs as u32
        );
    }
    println!("\n(Exists-fraction drops from 1 to 0 around m/n ≈ 4.3 — the");
    println!(" hardness Theorem 4.1 transports from 3SAT into data exchange.)");
    Ok(())
}
