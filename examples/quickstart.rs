//! Quickstart: the paper's running example (Example 2.2) end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gdx::exchange::representative::RepresentativeOutcome;
use gdx::prelude::*;
use gdx_common::Term;

fn main() -> Result<()> {
    // 1. A data exchange setting Ω = (R, Σ, M_st, M_t), written in the DSL.
    let setting = gdx::mapping::dsl::parse_setting(
        "source { Flight/3; Hotel/2 }
         target { f; h }
         sttgd Flight(x1, x2, x3), Hotel(x1, x4)
               -> exists y : (x2, f.f*, y), (y, h, x4), (y, f.f*, x3);
         egd (x1, h, x3), (x2, h, x3) -> x1 = x2;",
    )?;

    // 2. The source instance: two flights, three hotel stays.
    let instance = Instance::parse(
        setting.source.clone(),
        "Flight(01, c1, c2); Flight(02, c3, c2);
         Hotel(01, hx); Hotel(01, hy); Hotel(02, hx);",
    )?;
    println!("Instance:\n{instance}");

    let ex = Exchange::new(setting.clone(), instance.clone());

    // 3. Chase a universal representative: the (pattern, egds) pair of
    //    Section 5 — the pattern is Figure 5 of the paper.
    match ex.universal_representative()? {
        RepresentativeOutcome::Representative(rep) => {
            println!("Chased pattern (Figure 5):\n{}", rep.pattern);
        }
        RepresentativeOutcome::ChaseFailed => unreachable!("Example 2.2 chases fine"),
    }

    // 4. Existence of solutions (NP-hard in general; easy here).
    let existence = ex.solution_exists()?;
    let witness = existence.witness().expect("Example 2.2 has solutions");
    println!("One solution:\n{witness}");
    assert!(ex.is_solution(witness)?);

    // 5. Checking a hand-written graph: Figure 1(a)'s G1.
    let g1 = Graph::parse("(c1, f, _N); (c3, f, _N); (_N, f, c2); (_N, h, hx); (_N, h, hy);")?;
    println!("G1 is a solution: {}", ex.is_solution(&g1)?);

    // 6. Certain answers of the paper's query
    //    Q = (x1, f.f*.[h].f-.(f-)*, x2).
    let q = Cnre::single(
        Term::var("x1"),
        gdx::nre::parse::parse_nre("f.f*.[h].f-.(f-)*")?,
        Term::var("x2"),
    );
    let (answers, exact) =
        gdx::exchange::certain::certain_answers(&instance, &setting, &q, &SolverConfig::default())?;
    println!(
        "cert_Ω(Q, I){}:",
        if exact { "" } else { " (within bounds)" }
    );
    for row in &answers {
        println!("  ({}, {})", row[0], row[1]);
    }
    assert_eq!(answers.len(), 4, "the paper's four certain pairs");
    Ok(())
}
