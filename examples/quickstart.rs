//! Quickstart: the paper's running example (Example 2.2) end to end, on
//! the session API — one `ExchangeSession` carries every step, so the
//! chased representative and the enumerated solution family are computed
//! once and reused.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gdx::exchange::representative::RepresentativeOutcome;
use gdx::prelude::*;

fn main() -> Result<()> {
    // 1. A data exchange setting Ω = (R, Σ, M_st, M_t), written in the DSL.
    let setting = gdx::mapping::dsl::parse_setting(
        "source { Flight/3; Hotel/2 }
         target { f; h }
         sttgd Flight(x1, x2, x3), Hotel(x1, x4)
               -> exists y : (x2, f.f*, y), (y, h, x4), (y, f.f*, x3);
         egd (x1, h, x3), (x2, h, x3) -> x1 = x2;",
    )?;

    // 2. The source instance: two flights, three hotel stays.
    let instance = Instance::parse(
        setting.source.clone(),
        "Flight(01, c1, c2); Flight(02, c3, c2);
         Hotel(01, hx); Hotel(01, hy); Hotel(02, hx);",
    )?;
    println!("Instance:\n{instance}");

    // 3. The session: owns the pair, memoizes everything expensive.
    let mut session = ExchangeSession::new(setting, instance);

    // 4. Chase a universal representative: the (pattern, egds) pair of
    //    Section 5 — the pattern is Figure 5 of the paper.
    match session.representative()? {
        RepresentativeOutcome::Representative(rep) => {
            println!("Chased pattern (Figure 5):\n{}", rep.pattern);
        }
        RepresentativeOutcome::ChaseFailed => unreachable!("Example 2.2 chases fine"),
    }

    // 5. Stream solutions lazily: taking the first witness examines one
    //    candidate, not the whole family.
    let witness = session
        .solutions()?
        .next()
        .expect("Example 2.2 has solutions")?;
    println!("One solution:\n{witness}");
    assert!(session.is_solution(&witness)?);

    // 6. Checking a hand-written graph: Figure 1(a)'s G1.
    let g1 = Graph::parse("(c1, f, _N); (_N, f, c2); (c3, f, _N); (_N, h, hx); (_N, h, hy);")?;
    println!("G1 is a solution: {}", session.is_solution(&g1)?);

    // 7. Certain answers of the paper's query
    //    Q = (x1, f.f*.[h].f-.(f-)*, x2) — prepared once, reusable.
    let q = PreparedQuery::parse("(x1, f.f*.[h].f-.(f-)*, x2)")?;
    let (answers, exact) = session.certain_answers(&q)?;
    println!(
        "cert_Ω(Q, I){}:",
        if exact { "" } else { " (within bounds)" }
    );
    for row in &answers {
        println!("  ({}, {})", row[0], row[1]);
    }
    assert_eq!(answers.len(), 4, "the paper's four certain pairs");

    // 8. Boolean probes on the same session are marginal-cost: the
    //    solution family is already memoized.
    let probe = PreparedQuery::parse("(\"c1\", f.f*, \"c2\")")?;
    println!(
        "(c1, f.f*, c2) certain: {}",
        session.certain(&probe)?.is_certain()
    );
    Ok(())
}
