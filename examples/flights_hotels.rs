//! A scaled Flight/Hotel scenario: generate a few thousand facts, chase
//! them through a session into a universal representative, inspect what
//! the "a hotel is in exactly one city" constraint does to the target
//! graph, and query the canonical solution with a prepared query.
//!
//! ```text
//! cargo run --release --example flights_hotels
//! ```

use gdx::datagen::{flights_hotels, rng, FlightsHotelsParams};
use gdx::exchange::representative::RepresentativeOutcome;
use gdx::pattern::instantiate_shortest;
use gdx::prelude::*;
use std::time::Instant;

fn main() -> Result<()> {
    let setting = Setting::example_2_2_egd();
    let params = FlightsHotelsParams {
        flights: 2_000,
        cities: 300,
        hotels: 250,
        stays_per_flight: 2,
    };
    println!("Generating {:?}", params);
    let instance = flights_hotels(params, &mut rng(2024));
    println!(
        "  {} flights, {} hotel stays",
        instance.relation_str("Flight").unwrap().len(),
        instance.relation_str("Hotel").unwrap().len()
    );

    // One session runs the whole pipeline: s-t chase + adapted egd chase,
    // memoized behind `representative()`.
    let mut session = ExchangeSession::new(setting, instance);
    let t = Instant::now();
    match session.representative()?.clone() {
        RepresentativeOutcome::Representative(rep) => {
            println!(
                "adapted chase: {} merges -> {} nodes / {} edges ({:?})",
                session.representative_merges(),
                rep.pattern.node_count(),
                rep.pattern.edge_count(),
                t.elapsed()
            );
            // A second call is free — the chase is memoized.
            let t2 = Instant::now();
            session.representative()?;
            println!("memoized representative fetch: {:?}", t2.elapsed());

            // Materialize a concrete target graph.
            let g = instantiate_shortest(&rep.pattern)?;
            println!(
                "canonical solution: {} nodes / {} edges",
                g.node_count(),
                g.edge_count()
            );
            // A couple of sanity queries on the target graph, prepared
            // once and evaluated against the instantiation.
            let q = PreparedQuery::parse("(x, f, y), (y, h, z)")?;
            let hits = q.evaluate(&g)?;
            println!(
                "(city) -f-> (hotel city) -h-> (hotel) matches: {}",
                hits.len()
            );
        }
        RepresentativeOutcome::ChaseFailed => {
            println!("egd chase failed: constants forced equal — no solution");
        }
    }
    Ok(())
}
