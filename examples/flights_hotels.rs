//! A scaled Flight/Hotel scenario: generate a few thousand facts, chase
//! them into a graph pattern, apply the egd phase, and inspect what the
//! "a hotel is in exactly one city" constraint does to the target graph.
//!
//! ```text
//! cargo run --release --example flights_hotels
//! ```

use gdx::chase::{chase_egds_on_pattern, chase_st, EgdChaseConfig, StChaseVariant};
use gdx::datagen::{flights_hotels, rng, FlightsHotelsParams};
use gdx::mapping::Setting;
use gdx::pattern::instantiate_shortest;
use gdx_common::Result;
use std::time::Instant;

fn main() -> Result<()> {
    let setting = Setting::example_2_2_egd();
    let params = FlightsHotelsParams {
        flights: 2_000,
        cities: 300,
        hotels: 250,
        stays_per_flight: 2,
    };
    println!("Generating {:?}", params);
    let instance = flights_hotels(params, &mut rng(2024));
    println!(
        "  {} flights, {} hotel stays",
        instance.relation_str("Flight").unwrap().len(),
        instance.relation_str("Hotel").unwrap().len()
    );

    // Source-to-target chase.
    let t = Instant::now();
    let st = chase_st(&instance, &setting, StChaseVariant::Oblivious)?;
    println!(
        "s-t chase: {} triggers -> pattern with {} nodes / {} edges ({:?})",
        st.triggers,
        st.pattern.node_count(),
        st.pattern.edge_count(),
        t.elapsed()
    );

    // Adapted egd chase (Section 5): hotels shared across triggers force
    // their cities to merge.
    let egds: Vec<_> = setting.egds().cloned().collect();
    let t = Instant::now();
    let outcome = chase_egds_on_pattern(&st.pattern, &egds, EgdChaseConfig::default())?;
    match &outcome {
        gdx::chase::EgdChaseOutcome::Success { pattern, merges } => {
            println!(
                "egd chase: {merges} merges -> {} nodes / {} edges ({:?})",
                pattern.node_count(),
                pattern.edge_count(),
                t.elapsed()
            );
            // Materialize a concrete target graph.
            let g = instantiate_shortest(pattern)?;
            println!(
                "canonical solution: {} nodes / {} edges",
                g.node_count(),
                g.edge_count()
            );
            // A couple of sanity queries on the target graph.
            let q = gdx::query::Cnre::parse("(x, f, y), (y, h, z)")?;
            let hits = gdx::query::evaluate(&g, &q)?;
            println!(
                "(city) -f-> (hotel city) -h-> (hotel) matches: {}",
                hits.len()
            );
        }
        gdx::chase::EgdChaseOutcome::Failed { constants, .. } => {
            println!(
                "egd chase failed: constants {} and {} forced equal — no solution",
                constants.0, constants.1
            );
        }
    }
    Ok(())
}
